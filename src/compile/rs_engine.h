// The RS-compiler black box (Theorem 3.2, Rajagopalan-Schulman /
// Hoza-Schulman) -- engine selection and the ideal-functionality support.
//
// The byzantine compiler only consumes one property of the RS-compiler:
// a tree protocol "ends correctly" whenever the adversary corrupts less
// than a Theta(1/m_T) fraction of its total communication.  Tree codes have
// no practical implementation, so we provide two backends (DESIGN.md,
// substitution 1):
//
//  * HopRepetition (default; fully distributed): every logical hop message
//    is transmitted rho times and majority-decoded.  Flipping one logical
//    hop costs the adversary ceil(rho/2) edge-rounds, so the number of
//    trees an f-mobile adversary can corrupt per scheduling block is
//    bounded by f * blockRounds / ceil(rho/2) -- the same "few bad trees"
//    outcome with a different constant, which the benchmarks measure.
//
//  * Contract (ideal functionality): transport runs plainly (rho = 1);
//    at block boundaries the compiler consults the simulator's ground-truth
//    CorruptionLedger and delivers the *fault-free* result for every tree
//    whose corruption count stayed below steps/cRS, and the transported
//    (adversarially influenced) result otherwise -- exactly the guarantee
//    the paper's theorems assume.  Requires globally consistent packing
//    knowledge.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "adv/adversary.h"
#include "compile/common.h"

namespace mobile::compile {

enum class EngineMode { HopRepetition, Contract };

struct EngineOptions {
  EngineMode mode = EngineMode::HopRepetition;
  /// Per-hop repetition factor (HopRepetition mode).
  int rho = 3;
  /// Contract threshold divisor: a tree protocol with S scheduled steps
  /// tolerates floor(S / cRS) corrupted edge-rounds (Contract mode).
  int cRS = 4;

  [[nodiscard]] int effectiveRho() const {
    return mode == EngineMode::HopRepetition ? rho : 1;
  }
};

/// Slot arithmetic of the Lemma 3.3 scheduler.  A block of S logical steps
/// over a packing with load eta and repetition rho occupies
/// S * rho * eta rounds:  round index r (0-based within the block)
/// decomposes into (step, rep, slot).
struct SlotSchedule {
  int eta = 1;
  int rho = 1;

  [[nodiscard]] int roundsPerStep() const { return eta * rho; }
  [[nodiscard]] int blockRounds(int steps) const {
    return steps * roundsPerStep();
  }
  [[nodiscard]] int stepOf(int r) const { return r / roundsPerStep(); }
  [[nodiscard]] int repOf(int r) const { return (r % roundsPerStep()) / eta; }
  [[nodiscard]] int slotOf(int r) const { return r % eta; }
};

/// Ground-truth helper for Contract mode: per-tree global edge sets plus
/// corruption counting over a round window.
class ContractOracle {
 public:
  ContractOracle(std::shared_ptr<adv::CorruptionLedger> ledger,
                 const PackingKnowledge& pk, const graph::Graph& g);

  /// Corrupted edge-rounds touching tree `t`'s edges in [fromRound, toRound].
  [[nodiscard]] long corruptions(int tree, int fromRound, int toRound) const;

  /// Whether tree `t` "ends correctly" per the Theorem 3.2 contract for a
  /// protocol with `steps` logical steps in the given window.
  [[nodiscard]] bool survives(int tree, int fromRound, int toRound, int steps,
                              int cRS) const;

 private:
  std::shared_ptr<adv::CorruptionLedger> ledger_;
  std::vector<std::set<graph::EdgeId>> treeEdges_;
};

}  // namespace mobile::compile
