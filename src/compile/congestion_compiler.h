// Theorem 1.3: the congestion-sensitive compiler with perfect mobile
// security.
//
// Pipeline for an r-round, cong-congestion fault-free algorithm A:
//   Step 1 (local secrets)   r + t1 rounds of random exchange build per-arc
//                            key pools of r pads (Lemma A.1); at most
//                            ~f*(r+t1)/(t1+1) edges leak.
//   Step 2 (global secret)   the root samples the seed of a (4*f*cong)-wise
//                            independent hash h* (Lemma 1.11) and
//                            mobile-securely broadcasts it (Theorem A.4
//                            machinery over a tree packing).
//   Step 3 (simulation)      r rounds; every edge carries a message every
//                            round: a real round-i message m becomes
//                            h*(m) XOR K_i(u,v); an empty slot becomes a
//                            fresh uniform word.  Receivers invert h* by
//                            scanning the 2^payloadBits message domain (the
//                            paper's decoding loop) after removing the pad;
//                            non-preimages are dropped as empty.
//
// Security: pads make all good-edge traffic uniform; on leaky edges the
// adversary sees only h*-images, and the (4*f*cong)-wise independence of h*
// keeps any f*cong observed images jointly uniform.  Empty and non-empty
// slots are indistinguishable.
#pragma once

#include <memory>

#include "compile/common.h"
#include "sim/node.h"

namespace mobile::compile {

struct CongestionCompilerOptions {
  /// Message payload domain is [0, 2^payloadBits); decoding scans it.
  unsigned payloadBits = 10;
  /// Hash output width B' (collision slack; B' - payloadBits >= ~16).
  unsigned hashBits = 30;
  /// Key-pool threshold t1 (0 = auto: t1 = 3r, <= ~4f/3 leaky edges).
  int poolThreshold = 0;
};

struct CongestionCompilerStats {
  int poolRounds = 0;
  int broadcastRounds = 0;
  int simulationRounds = 0;
  int totalRounds = 0;
  int hashIndependence = 0;
};

/// Compiles `inner` (must declare rounds and congestion; payloads must fit
/// payloadBits) into its f-mobile-secure equivalent.
[[nodiscard]] sim::Algorithm compileCongestionSensitive(
    const graph::Graph& g, const sim::Algorithm& inner,
    std::shared_ptr<const PackingKnowledge> pk, int f,
    CongestionCompilerOptions opts = {},
    CongestionCompilerStats* stats = nullptr);

}  // namespace mobile::compile
