// Lemma 3.10: f-mobile-resilient computation of a weak (k, DTP, 2) tree
// packing on expander graphs -- the engine of Theorems 1.7 and 4.12.
//
// Protocol (run *in the presence of the byzantine adversary*):
//   round 1:  for every edge, the higher-id endpoint samples a color in [k]
//             and transmits it; each endpoint keeps its own belief of the
//             edge color (the adversary can desynchronize beliefs -- such
//             colors are "bad" and sacrificed by the analysis).
//   rounds 2..z+1:  parallel max-id BFS inside every color class: each node
//             forwards its best-known id over its incident edges (each edge
//             carries only its own color's wave, so bandwidth is 1 word);
//             when a node's best id increases it re-points its parent for
//             that color and records the round as its depth estimate.
//   final round:  orientation requests: every node tells each parent to
//             adopt it as a child (building the children lists).
//
// Good colors (never corrupted) form spanning trees of depth O(log n / phi)
// rooted at the maximum-id node; with k = Theta(f * log n / phi) at least
// 0.9k colors are good w.h.p., yielding a weak packing with load 2.
//
// The Section 4.3 variant repeats every logical round `padRepetition` times
// with majority decoding (padded rounds), making the same computation
// resilient to round-error-rate adversaries.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "compile/common.h"
#include "sim/node.h"

namespace mobile::compile {

struct ExpanderPackingOptions {
  int k = 8;              // colors / trees
  int bfsRounds = 8;      // z = O(log n / phi)
  int padRepetition = 1;  // s (Section 4.3 padded rounds); 1 = plain
};

/// Post-run container the protocol nodes fill with their final beliefs.
/// Each node publishes into its own `staged` slot; the last publisher
/// (counted atomically, so engine-threaded runs freeze exactly once)
/// flattens the staging into `knowledge` and frees it, so by the time the
/// network run returns `knowledge` is complete and compact.
struct ExpanderPackingResult {
  std::shared_ptr<PackingKnowledge> knowledge;
  std::vector<StagedNodeView> staged;
  std::atomic<int> published{0};
};

/// Builds the packing protocol.  After the network run completes, `result`
/// holds the distributed knowledge (root = node n-1, depthBound =
/// bfsRounds, eta = 2).
[[nodiscard]] sim::Algorithm makeExpanderPackingProtocol(
    const graph::Graph& g, ExpanderPackingOptions opts,
    std::shared_ptr<ExpanderPackingResult> result);

/// Counts packing quality against the ground-truth graph: how many trees
/// are consistent spanning trees of depth <= depthCap rooted at n-1.
struct WeakPackingQuality {
  int k = 0;
  int goodTrees = 0;
  int maxDepthSeen = 0;
  [[nodiscard]] double goodFraction() const {
    return k == 0 ? 0.0 : static_cast<double>(goodTrees) / k;
  }
};
[[nodiscard]] WeakPackingQuality assessWeakPacking(
    const graph::Graph& g, const PackingKnowledge& pk);

/// Convenience: the CONGESTED CLIQUE packing (Theorem 1.6) -- star trees,
/// trivially known without preprocessing.
[[nodiscard]] std::shared_ptr<PackingKnowledge> cliquePackingKnowledge(
    const graph::Graph& g);

}  // namespace mobile::compile
