// Standalone Lemma 3.3 experiment: k RS-engine-protected tree broadcasts
// scheduled in parallel over a packing with load eta.
//
// The root seeds every tree with a known value; each tree floods its value
// down under the slot schedule with the selected engine (hop repetition or
// contract).  Afterwards countCorrectTrees() reports, per tree, whether
// *every* node received the root's value -- the "ends correctly" statistic
// whose lower bound (all but O(f * eta) trees) Lemma 3.3 proves.
#pragma once

#include <memory>

#include "compile/common.h"
#include "compile/rs_engine.h"
#include "sim/node.h"

namespace mobile::compile {

struct ScheduledBroadcastShared {
  std::vector<std::uint64_t> truth;                 // [tree] root value
  std::vector<std::vector<std::uint64_t>> received;  // [node][tree]
  std::shared_ptr<adv::CorruptionLedger> ledger;     // Contract mode
  std::unique_ptr<ContractOracle> oracle;
};

/// Builds the scheduled broadcast; rounds = depthBound * eta * rho.
[[nodiscard]] sim::Algorithm makeScheduledTreeBroadcast(
    const graph::Graph& g, std::shared_ptr<const PackingKnowledge> pk,
    EngineOptions engine, std::shared_ptr<ScheduledBroadcastShared> shared);

/// Trees whose value reached every node intact.
[[nodiscard]] int countCorrectTrees(const ScheduledBroadcastShared& shared,
                                    const PackingKnowledge& pk);

}  // namespace mobile::compile
