#include "compile/congestion_compiler.h"

#include <algorithm>
#include <cassert>

#include "compile/keypool.h"
#include "compile/secure_broadcast.h"
#include "hash/cwise.h"

namespace mobile::compile {

using graph::Graph;
using graph::NodeId;
using sim::Inbox;
using sim::MapInbox;
using sim::MapOutbox;
using sim::Msg;
using sim::MsgView;
using sim::NodeState;
using sim::Outbox;

namespace {

struct Layout {
  int r = 0;
  int t1 = 0;
  int poolRounds = 0;       // r + t1
  int broadcastRounds = 0;  // BroadcastCore::totalRounds()
  int seedWords = 0;        // c-wise hash coefficients
  [[nodiscard]] int total() const {
    return poolRounds + broadcastRounds + r;
  }
};

class CongestionNode final : public NodeState {
 public:
  CongestionNode(NodeId self, const Graph& g, util::Rng rng,
                 std::unique_ptr<NodeState> inner,
                 std::shared_ptr<const PackingKnowledge> pk, int f,
                 CongestionCompilerOptions opts, Layout layout)
      : self_(self),
        g_(g),
        rng_(std::move(rng)),
        inner_(std::move(inner)),
        pk_(std::move(pk)),
        opts_(opts),
        layout_(layout),
        pool_(layout.r, layout.t1, 1),
        capture_(g, self),
        deliver_(g, self) {
    for (const auto& nb : g_.neighbors(self_))
      (void)deliver_.slot(nb.node);  // fix the delivery slot set up front
    // Root draws the global hash seed; all nodes instantiate a core with
    // the same width (non-roots pass zeros which are ignored).
    std::vector<std::uint64_t> seed(
        static_cast<std::size_t>(layout_.seedWords), 0);
    if (self_ == pk_->root)
      for (auto& w : seed) w = rng_.next();
    bcast_ = std::make_unique<BroadcastCore>(self_, g_, rng_.split(0xbc),
                                             pk_, std::move(seed), f);
  }

  void send(int round, Outbox& out) override {
    if (round <= layout_.poolRounds) {
      for (const auto& nb : g_.neighbors(self_)) {
        const std::uint64_t x = rng_.next();
        sentRandom_[nb.node].push_back(x);
        out.to(nb.node, Msg::of(x));
      }
      return;
    }
    const int b = round - layout_.poolRounds;
    if (b <= layout_.broadcastRounds) {
      bcast_->send(b, out);
      return;
    }
    const int i = b - layout_.broadcastRounds;  // simulated round of A
    if (i > layout_.r) return;
    if (i == 1) finalizeKeys();
    capture_.begin();
    inner_->send(i, capture_);
    const auto& nbs = g_.neighbors(self_);
    for (std::size_t j = 0; j < nbs.size(); ++j) {
      const Msg& cm = capture_.slot(j);
      std::uint64_t wire;
      if (cm.present) {
        const std::uint64_t m = cm.atOr(0, 0);
        assert(m < (1ULL << opts_.payloadBits) &&
               "payload exceeds the declared domain");
        wire = (*hash_)(m) ^ keyFor(sendKeys_, nbs[j].node, i);
      } else {
        wire = rng_.next() & ((1ULL << opts_.hashBits) - 1);
      }
      out.to(nbs[j].node, sim::resetScratch(wire_).push(wire));
    }
  }

  void receive(int round, const Inbox& in) override {
    if (round <= layout_.poolRounds) {
      for (const auto& nb : g_.neighbors(self_)) {
        const MsgView m = in.from(nb.node);
        recvRandom_[nb.node].push_back(m.present() ? m.at(0) : 0);
      }
      return;
    }
    const int b = round - layout_.poolRounds;
    if (b <= layout_.broadcastRounds) {
      bcast_->receive(b, in);
      return;
    }
    const int i = b - layout_.broadcastRounds;
    if (i > layout_.r) return;
    deliver_.clearSlots();
    for (const auto& nb : g_.neighbors(self_)) {
      const MsgView m = in.from(nb.node);
      if (!m.present()) continue;
      const std::uint64_t image = m.at(0) ^ keyFor(recvKeys_, nb.node, i);
      // The paper's decoding loop: scan the message domain for a preimage.
      const auto hit = preimage_.find(image);
      if (hit != preimage_.end())
        sim::resetScratch(deliver_.slot(nb.node)).push(hit->second);
    }
    inner_->receive(i, deliver_);
    if (i >= layout_.r) done_ = true;
  }

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::uint64_t output() const override {
    return inner_->output();
  }

 private:
  void finalizeKeys() {
    for (const auto& nb : g_.neighbors(self_)) {
      sendKeys_[nb.node] = pool_.extract(sentRandom_[nb.node]);
      recvKeys_[nb.node] = pool_.extract(recvRandom_[nb.node]);
    }
    // Install h* from the broadcast seed and precompute the decoding table
    // (one scan of the domain, reused every round).
    hash_ = std::make_unique<hash::CwiseHash>(bcast_->result(),
                                              opts_.hashBits);
    for (std::uint64_t m = 0; m < (1ULL << opts_.payloadBits); ++m)
      preimage_[(*hash_)(m)] = m;
  }

  [[nodiscard]] std::uint64_t keyFor(
      const std::map<NodeId, std::vector<std::uint64_t>>& keys, NodeId nb,
      int i) const {
    return keys.at(nb)[static_cast<std::size_t>(i - 1)] &
           ((1ULL << opts_.hashBits) - 1);
  }

  NodeId self_;
  const Graph& g_;
  util::Rng rng_;
  std::unique_ptr<NodeState> inner_;
  std::shared_ptr<const PackingKnowledge> pk_;
  CongestionCompilerOptions opts_;
  Layout layout_;
  KeyPool pool_;
  sim::FlatCapture capture_;  // inner sends, reused every sim round
  sim::MapInbox deliver_;     // reused delivery surface (slots fixed)
  Msg wire_;                  // reused wire message
  std::unique_ptr<BroadcastCore> bcast_;
  std::unique_ptr<hash::CwiseHash> hash_;
  std::map<std::uint64_t, std::uint64_t> preimage_;
  std::map<NodeId, std::vector<std::uint64_t>> sentRandom_, recvRandom_;
  std::map<NodeId, std::vector<std::uint64_t>> sendKeys_, recvKeys_;
  bool done_ = false;
};

}  // namespace

sim::Algorithm compileCongestionSensitive(
    const graph::Graph& g, const sim::Algorithm& inner,
    std::shared_ptr<const PackingKnowledge> pk, int f,
    CongestionCompilerOptions opts, CongestionCompilerStats* stats) {
  Layout layout;
  layout.r = inner.rounds;
  layout.t1 = opts.poolThreshold > 0 ? opts.poolThreshold : 3 * inner.rounds;
  layout.poolRounds = layout.r + layout.t1;
  const int cong = std::max(1, inner.congestion);
  layout.seedWords = std::max(2, 4 * f * cong);
  {
    BroadcastCore probe(pk->root, g, util::Rng(1), pk,
                        std::vector<std::uint64_t>(
                            static_cast<std::size_t>(layout.seedWords), 0),
                        f);
    layout.broadcastRounds = probe.totalRounds();
  }
  if (stats != nullptr) {
    stats->poolRounds = layout.poolRounds;
    stats->broadcastRounds = layout.broadcastRounds;
    stats->simulationRounds = layout.r;
    stats->totalRounds = layout.total();
    stats->hashIndependence = layout.seedWords;
  }
  sim::Algorithm out;
  out.rounds = layout.total();
  out.congestion = out.rounds;
  out.makeNode = [&g, inner, pk, f, opts, layout](NodeId v, const Graph&,
                                                  util::Rng rng) {
    auto innerNode = inner.makeNode(v, g, rng.split(0x77));
    return std::make_unique<CongestionNode>(v, g, rng.split(0x88),
                                            std::move(innerNode), pk, f, opts,
                                            layout);
  };
  return out;
}

}  // namespace mobile::compile
