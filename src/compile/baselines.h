// Baseline comparators for the negative-control experiments (DESIGN.md
// section 1.4).
//
// NaiveRepetition: every inner round is repeated 2f+1 times on every edge
// with per-edge majority decoding.  This defeats an adversary that *moves*
// between edges, but an f-mobile adversary is allowed to camp on the same f
// edges every round, winning every majority there -- the measured failure
// that motivates the paper's sketch-and-broadcast machinery.
#pragma once

#include "sim/node.h"

namespace mobile::compile {

/// 2f+1-repetition-with-majority compiler (the strawman).
[[nodiscard]] sim::Algorithm compileNaiveRepetition(const graph::Graph& g,
                                                    const sim::Algorithm& inner,
                                                    int f);

}  // namespace mobile::compile
