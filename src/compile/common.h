// Shared infrastructure for the compilers.
//
//  * Message keys: the byzantine machinery streams messages through
//    l0/sparse-recovery sketches whose universe is 61-bit integers; a
//    CONGEST message m_i(u,v) is encoded as
//        [sender:12][receiver:12][chunk:3][payload:32]   (59 bits)
//    matching the paper's convention that a message's last bits carry
//    id(u) o id(v) (Section 3.2, KT1 assumption).
//  * PackingKnowledge: the *distributed* form of a tree packing -- each
//    node's own belief of (parent, children, depth) per tree plus the
//    per-edge slot tables used by the Lemma 3.3 scheduler.  For trusted
//    preprocessing the beliefs are globally consistent; the expander
//    protocol (Lemma 3.10) produces per-node beliefs that may disagree on
//    adversarially colored edges, which the weak-packing analysis absorbs.
//
// Storage is flat CSR (docs/architecture.md section 11): the old
// one-vector-per-(node,tree) representation cost ~10 heap blocks and
// several hundred bytes of allocator overhead per node, which at n=10^6
// dominated compile-state memory.  Nodes access their slice through the
// NodeTreeView value proxy; per-(node,tree) depths are int16_t and
// per-arc tree ids int16_t (k <= 32767, depth <= 32767 -- both orders of
// magnitude above any schedule the compilers accept).
//
// See docs/architecture.md section 4 for how these two pieces slot into
// the compiler pipeline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/tree_packing.h"
#include "sim/arc_buffer.h"
#include "sim/message.h"

namespace mobile::util {
class ThreadPool;
}

namespace mobile::compile {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Majority vote over `count` message copies at `copies`, ties broken by
/// first occurrence; returns a reference into the caller's stash.  The
/// no-alloc decode step of the hop-repetition engine, shared by the
/// slot-indexed stashes of the byzantine and rewind compilers.
[[nodiscard]] inline const sim::Msg& majorityRef(const sim::Msg* copies,
                                                 std::size_t count) {
  std::size_t bestIdx = 0;
  int bestCount = 0;
  for (std::size_t i = 0; i < count; ++i) {
    int c = 0;
    for (std::size_t j = 0; j < count; ++j)
      if (copies[j] == copies[i]) ++c;
    if (c > bestCount) {
      bestCount = c;
      bestIdx = i;
    }
  }
  return copies[bestIdx];
}

/// A majority slot that stores each *distinct* message once with its
/// multiplicity instead of all rho copies.  Fault-free schedules deliver
/// rho identical copies, so the slot holds one message -- cutting the
/// dominant per-node stash of the hop-repetition engine to ~1/rho of the
/// copy-stash footprint at scale.  winner() reproduces majorityRef
/// exactly: distinct values are kept in first-occurrence order and the
/// winner is the first value attaining the maximum count (majorityRef's
/// strict-> scan picks the same one).  Capacity is kept across reset(),
/// preserving the compilers' no-steady-state-allocation idiom.
class VoteSlot {
 public:
  void reset() { used_ = 0; }
  void add(const sim::MsgView& m) {
    for (std::size_t j = 0; j < used_; ++j) {
      if (sim::sameContent(m, vals_[j])) {
        ++cnt_[j];
        return;
      }
    }
    if (used_ == vals_.size()) {
      vals_.emplace_back();
      cnt_.push_back(0);
    }
    sim::assignMsg(vals_[used_], m);
    cnt_[used_] = 1;
    ++used_;
  }
  [[nodiscard]] const sim::Msg& winner() const {
    std::size_t best = 0;
    for (std::size_t j = 1; j < used_; ++j)
      if (cnt_[j] > cnt_[best]) best = j;
    return vals_[best];
  }

 private:
  std::vector<sim::Msg> vals_;        // distinct, first-occurrence order
  std::vector<std::uint16_t> cnt_;    // multiplicity per distinct value
  std::size_t used_ = 0;
};

// --- 61-bit message keys -----------------------------------------------------

inline constexpr std::uint64_t kPayloadMask = 0xffffffffULL;  // 32 bits
inline constexpr int kMaxKeyNodes = 1 << 12;                  // 12-bit ids

/// Encodes (sender, receiver, chunk, payload) into a sketch-universe key.
[[nodiscard]] inline std::uint64_t encodeKey(NodeId sender, NodeId receiver,
                                             unsigned chunk,
                                             std::uint64_t payload32) {
  return (static_cast<std::uint64_t>(sender) << 47) |
         (static_cast<std::uint64_t>(receiver) << 35) |
         (static_cast<std::uint64_t>(chunk & 0x7u) << 32) |
         (payload32 & kPayloadMask);
}

struct DecodedKey {
  NodeId sender;
  NodeId receiver;
  unsigned chunk;
  std::uint64_t payload;
};

[[nodiscard]] inline DecodedKey decodeKey(std::uint64_t key) {
  DecodedKey d;
  d.sender = static_cast<NodeId>((key >> 47) & 0xfff);
  d.receiver = static_cast<NodeId>((key >> 35) & 0xfff);
  d.chunk = static_cast<unsigned>((key >> 32) & 0x7);
  d.payload = key & kPayloadMask;
  return d;
}

// --- distributed tree-packing knowledge --------------------------------------

class NodeTreeView;

/// The network-wide bundle: per-node views plus the public schedule
/// parameters every node knows (k, eta, depth bound, root id).
///
/// Per-node beliefs live in flat arrays indexed (node * k + tree); the
/// children of every (node, tree) and the tree ids on every arc are CSR
/// lists.  Arc order matches Graph::neighbors order, so a node iterating
/// its adjacency can address its slot tables by neighbor *index* in O(1).
struct PackingKnowledge {
  NodeId root = -1;
  int k = 0;        // number of trees
  int eta = 1;      // slot count per phase (max edge load)
  int depthBound = 0;

  // Flat storage -- filled by distributePacking / freezePackingViews;
  // treat as read-only and go through view(v) for access.
  NodeId n = 0;
  std::vector<NodeId> parentFlat;        // [v*k + t]; -1 = root/none
  std::vector<std::int16_t> depthFlat;   // [v*k + t]; -1 = not reached
  std::vector<std::uint32_t> childOff;   // n*k + 1
  std::vector<NodeId> childList;
  std::vector<std::uint32_t> arcOff;     // n + 1 (Graph::neighbors order)
  std::vector<NodeId> arcNbr;            // neighbor id per arc
  std::vector<std::uint32_t> arcTreeOff; // arcOff[n] + 1
  std::vector<std::int16_t> arcTreeList; // ascending tree ids per arc

  [[nodiscard]] inline NodeTreeView view(NodeId v) const;

  /// Resident bytes of the flat arrays (the compile/preprocess gauge).
  [[nodiscard]] std::size_t memoryBytes() const {
    return parentFlat.capacity() * sizeof(NodeId) +
           depthFlat.capacity() * sizeof(std::int16_t) +
           childOff.capacity() * sizeof(std::uint32_t) +
           childList.capacity() * sizeof(NodeId) +
           arcOff.capacity() * sizeof(std::uint32_t) +
           arcNbr.capacity() * sizeof(NodeId) +
           arcTreeOff.capacity() * sizeof(std::uint32_t) +
           arcTreeList.capacity() * sizeof(std::int16_t);
  }
};

/// One node's belief about its role in every tree of a packing: a value
/// proxy over the owning PackingKnowledge's flat arrays.  Cheap to copy
/// (pointer + offsets); valid as long as the PackingKnowledge lives.
class NodeTreeView {
 public:
  NodeTreeView(const PackingKnowledge* pk, NodeId v)
      : pk_(pk),
        base_(static_cast<std::size_t>(v) * static_cast<std::size_t>(pk->k)),
        arc0_(pk->arcOff[static_cast<std::size_t>(v)]),
        arc1_(pk->arcOff[static_cast<std::size_t>(v) + 1]) {}

  [[nodiscard]] NodeId parent(int t) const {
    return pk_->parentFlat[base_ + static_cast<std::size_t>(t)];
  }
  [[nodiscard]] int depth(int t) const {
    return pk_->depthFlat[base_ + static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::span<const NodeId> children(int t) const {
    const std::size_t i = base_ + static_cast<std::size_t>(t);
    return {pk_->childList.data() + pk_->childOff[i],
            pk_->childList.data() + pk_->childOff[i + 1]};
  }
  [[nodiscard]] bool hasChild(int t, NodeId u) const {
    const auto ch = children(t);
    return std::find(ch.begin(), ch.end(), u) != ch.end();
  }
  [[nodiscard]] bool inTree(int t, NodeId neighbor) const {
    return parent(t) == neighbor || hasChild(t, neighbor);
  }

  /// Arc-indexed slot tables; `i` is the neighbor's position in
  /// Graph::neighbors(v) order.
  [[nodiscard]] int degree() const { return static_cast<int>(arc1_ - arc0_); }
  [[nodiscard]] NodeId neighborAt(int i) const {
    return pk_->arcNbr[arc0_ + static_cast<std::uint32_t>(i)];
  }
  [[nodiscard]] std::span<const std::int16_t> trees(int i) const {
    const std::size_t a = arc0_ + static_cast<std::size_t>(i);
    return {pk_->arcTreeList.data() + pk_->arcTreeOff[a],
            pk_->arcTreeList.data() + pk_->arcTreeOff[a + 1]};
  }
  [[nodiscard]] int slotCount(int i) const {
    return static_cast<int>(trees(i).size());
  }
  /// Tree scheduled at (arc i, slot); -1 when the slot is unused.
  [[nodiscard]] int treeAt(int i, int slot) const {
    const auto ts = trees(i);
    if (slot < 0 || slot >= static_cast<int>(ts.size())) return -1;
    return ts[static_cast<std::size_t>(slot)];
  }
  /// Slot carrying `tree` on arc i; -1 if the arc is not in that tree.
  [[nodiscard]] int slotOf(int i, int tree) const {
    const auto ts = trees(i);
    const auto pos = std::find(ts.begin(), ts.end(),
                               static_cast<std::int16_t>(tree));
    return pos == ts.end() ? -1 : static_cast<int>(pos - ts.begin());
  }
  /// Neighbor-id lookup (linear scan of the adjacency; prefer the indexed
  /// accessors on hot paths).
  [[nodiscard]] int arcIndexOf(NodeId neighbor) const {
    for (std::uint32_t a = arc0_; a < arc1_; ++a)
      if (pk_->arcNbr[a] == neighbor) return static_cast<int>(a - arc0_);
    return -1;
  }

 private:
  const PackingKnowledge* pk_;
  std::size_t base_;
  std::uint32_t arc0_;
  std::uint32_t arc1_;
};

inline NodeTreeView PackingKnowledge::view(NodeId v) const {
  return NodeTreeView(this, v);
}

/// Mutable per-node belief, the staging form filled by distributed
/// packing protocols (Lemma 3.10) before freezePackingViews flattens it.
struct StagedNodeView {
  std::vector<NodeId> parent;                 // per tree; -1 = root/none
  std::vector<std::vector<NodeId>> children;  // per tree
  std::vector<int> depth;                     // per tree; -1 = not reached
};

/// Flattens staged per-node beliefs into pk's CSR arrays.  The per-arc
/// slot lists are derived from each node's *own* belief (tree t is on the
/// arc to u iff u is my parent or one of my children in t), sorted
/// ascending -- exactly the lists the old map-of-vectors construction
/// produced.  `staged` is consumed (moved from) to free the staging
/// memory before the round loop starts.
void freezePackingViews(PackingKnowledge& pk, const Graph& g,
                        std::vector<StagedNodeView>&& staged);

/// Builds consistent distributed knowledge from a (centralized) packing --
/// the trusted-preprocessing path of Theorem 1.4(ii) / Corollary 3.9.
/// `pool` (optional) parallelizes the per-node fill; the output is
/// identical at any thread count.
[[nodiscard]] std::shared_ptr<PackingKnowledge> distributePacking(
    const Graph& g, const graph::TreePacking& packing, int depthBound,
    util::ThreadPool* pool = nullptr);

}  // namespace mobile::compile
