// Shared infrastructure for the compilers.
//
//  * Message keys: the byzantine machinery streams messages through
//    l0/sparse-recovery sketches whose universe is 61-bit integers; a
//    CONGEST message m_i(u,v) is encoded as
//        [sender:12][receiver:12][chunk:3][payload:32]   (59 bits)
//    matching the paper's convention that a message's last bits carry
//    id(u) o id(v) (Section 3.2, KT1 assumption).
//  * PackingKnowledge: the *distributed* form of a tree packing -- each
//    node's own belief of (parent, children, depth) per tree plus the
//    per-edge slot tables used by the Lemma 3.3 scheduler.  For trusted
//    preprocessing the beliefs are globally consistent; the expander
//    protocol (Lemma 3.10) produces per-node beliefs that may disagree on
//    adversarially colored edges, which the weak-packing analysis absorbs.
//
// See docs/architecture.md section 4 for how these two pieces slot into
// the compiler pipeline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/tree_packing.h"
#include "sim/message.h"

namespace mobile::compile {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

/// Majority vote over `count` message copies at `copies`, ties broken by
/// first occurrence; returns a reference into the caller's stash.  The
/// no-alloc decode step of the hop-repetition engine, shared by the
/// slot-indexed stashes of the byzantine and rewind compilers.
[[nodiscard]] inline const sim::Msg& majorityRef(const sim::Msg* copies,
                                                 std::size_t count) {
  std::size_t bestIdx = 0;
  int bestCount = 0;
  for (std::size_t i = 0; i < count; ++i) {
    int c = 0;
    for (std::size_t j = 0; j < count; ++j)
      if (copies[j] == copies[i]) ++c;
    if (c > bestCount) {
      bestCount = c;
      bestIdx = i;
    }
  }
  return copies[bestIdx];
}

// --- 61-bit message keys -----------------------------------------------------

inline constexpr std::uint64_t kPayloadMask = 0xffffffffULL;  // 32 bits
inline constexpr int kMaxKeyNodes = 1 << 12;                  // 12-bit ids

/// Encodes (sender, receiver, chunk, payload) into a sketch-universe key.
[[nodiscard]] inline std::uint64_t encodeKey(NodeId sender, NodeId receiver,
                                             unsigned chunk,
                                             std::uint64_t payload32) {
  return (static_cast<std::uint64_t>(sender) << 47) |
         (static_cast<std::uint64_t>(receiver) << 35) |
         (static_cast<std::uint64_t>(chunk & 0x7u) << 32) |
         (payload32 & kPayloadMask);
}

struct DecodedKey {
  NodeId sender;
  NodeId receiver;
  unsigned chunk;
  std::uint64_t payload;
};

[[nodiscard]] inline DecodedKey decodeKey(std::uint64_t key) {
  DecodedKey d;
  d.sender = static_cast<NodeId>((key >> 47) & 0xfff);
  d.receiver = static_cast<NodeId>((key >> 35) & 0xfff);
  d.chunk = static_cast<unsigned>((key >> 32) & 0x7);
  d.payload = key & kPayloadMask;
  return d;
}

// --- distributed tree-packing knowledge --------------------------------------

/// One node's belief about its role in every tree of a packing.
struct NodeTreeView {
  std::vector<NodeId> parent;                 // per tree; -1 = root/none
  std::vector<std::vector<NodeId>> children;  // per tree
  std::vector<int> depth;                     // per tree; -1 = not reached

  /// Slot table: for each neighbor, the sorted list of tree ids this node
  /// believes the connecting edge belongs to (Lemma 3.3 scheduling).
  std::map<NodeId, std::vector<int>> edgeTrees;

  [[nodiscard]] bool inTree(int t, NodeId neighbor) const {
    if (parent[static_cast<std::size_t>(t)] == neighbor) return true;
    const auto& ch = children[static_cast<std::size_t>(t)];
    return std::find(ch.begin(), ch.end(), neighbor) != ch.end();
  }
};

/// The network-wide bundle: per-node views plus the public schedule
/// parameters every node knows (k, eta, depth bound, root id).
struct PackingKnowledge {
  NodeId root = -1;
  int k = 0;        // number of trees
  int eta = 1;      // slot count per phase (max edge load)
  int depthBound = 0;
  std::vector<NodeTreeView> views;  // indexed by node

  [[nodiscard]] const NodeTreeView& view(NodeId v) const {
    return views[static_cast<std::size_t>(v)];
  }
};

/// Builds consistent distributed knowledge from a (centralized) packing --
/// the trusted-preprocessing path of Theorem 1.4(ii) / Corollary 3.9.
[[nodiscard]] inline std::shared_ptr<PackingKnowledge> distributePacking(
    const Graph& g, const graph::TreePacking& packing, int depthBound) {
  auto pk = std::make_shared<PackingKnowledge>();
  pk->root = packing.commonRoot;
  pk->k = static_cast<int>(packing.trees.size());
  pk->depthBound = depthBound;
  const std::size_t n = static_cast<std::size_t>(g.nodeCount());
  pk->views.resize(n);
  for (auto& v : pk->views) {
    v.parent.assign(static_cast<std::size_t>(pk->k), -1);
    v.children.assign(static_cast<std::size_t>(pk->k), {});
    v.depth.assign(static_cast<std::size_t>(pk->k), -1);
  }
  std::vector<std::size_t> load(static_cast<std::size_t>(g.edgeCount()), 0);
  for (int t = 0; t < pk->k; ++t) {
    const auto& tree = packing.trees[static_cast<std::size_t>(t)];
    for (NodeId v = 0; v < g.nodeCount(); ++v) {
      auto& view = pk->views[static_cast<std::size_t>(v)];
      view.parent[static_cast<std::size_t>(t)] =
          tree.parent[static_cast<std::size_t>(v)];
      view.children[static_cast<std::size_t>(t)] =
          tree.children[static_cast<std::size_t>(v)];
      view.depth[static_cast<std::size_t>(t)] =
          tree.depth[static_cast<std::size_t>(v)];
      const NodeId p = tree.parent[static_cast<std::size_t>(v)];
      if (p >= 0) {
        pk->views[static_cast<std::size_t>(v)].edgeTrees[p].push_back(t);
        pk->views[static_cast<std::size_t>(p)].edgeTrees[v].push_back(t);
        ++load[static_cast<std::size_t>(g.edgeBetween(v, p))];
      }
    }
  }
  std::size_t eta = 1;
  for (const std::size_t l : load) eta = std::max(eta, l);
  pk->eta = static_cast<int>(eta);
  return pk;
}

}  // namespace mobile::compile
