// Theorem 3.5 / Algorithm ImprovedMobileByzantineSim: compiling any
// fault-free algorithm into an f-mobile-byzantine-resilient one, given
// distributed knowledge of a weak (k, DTP, eta) tree packing.
//
// Every round i of the inner algorithm A is simulated by one *phase*:
//
//   Step 1  (1 round)      all nodes exchange their round-i messages.
//   Step 2  (z iterations) mismatch correction:
//       (a) every node forms the multiset S_{i,j}(v): its sent messages
//           with frequency +1 and current received-estimates with -1 --
//           matching transmissions cancel, mismatches survive;
//       (b) per tree T: the root floods a fresh sketch seed R(T) down T,
//           every node builds t independent l0-samplers of S_{i,j}(v) with
//           R(T), and the sketches are merge-aggregated up T (procedure
//           L0RS(T, S_{i,j}), RS-compiled, all k trees in parallel via the
//           Lemma 3.3 scheduler);
//       (c) the root queries every sketch, keeps the observed mismatches
//           with support >= Delta_j (Eq. 8's dominating mismatches), and
//       (d) broadcasts the list via ECCSafeBroadcast (Reed-Solomon share
//           per tree, Lemma 3.6); every node decodes and patches its
//           estimates.
//       Real mismatches halve each iteration w.h.p. (Lemma 3.8), so after
//       z = O(log f) iterations all estimates are exact.
//   Step 3  deliver the corrected messages to the inner A instance.
//
// Round cost per phase: 1 + z * (sketch block + ECC block) * eta * rho,
// i.e. ~O(DTP * log f * eta) scheduled rounds -- the paper's ~O(DTP) up to
// the log factors it hides.
#pragma once

#include <memory>

#include "compile/common.h"
#include "compile/ecc_broadcast.h"
#include "compile/rs_engine.h"
#include "sim/network.h"
#include "sim/node.h"

namespace mobile::compile {

/// Which of the paper's two correction strategies drives Step 2.
enum class CorrectionMode {
  /// Section 3.2: z = O(log f) iterations of t l0-samplers per tree with
  /// the Delta_j dominating-mismatch threshold -- ~O(DTP) overhead.
  L0Iterative,
  /// Section 1.2.2: one shot of an O(f)-sparse recovery sketch per tree
  /// with majority voting across trees -- ~O(DTP + f) overhead (the sketch
  /// payload grows linearly with f, visible as message width).
  SparseOneShot,
};

struct ByzOptions {
  EngineOptions engine;
  CorrectionMode correction = CorrectionMode::L0Iterative;
  /// t: independent l0-sketches per tree per iteration (paper: Theta(log n)).
  int tSketches = 5;
  /// z: correction iterations (0 = auto, ceil(log2(2f)) + 2).
  int zIterations = 0;
  /// Cap on transported dominating-mismatch entries (0 = auto, 2f + 8).
  int dmCap = 0;
  /// ECC margin c'': block length k >= cPP * chunk message length.
  int cPP = 3;
  /// Geometric levels per l0-sketch (supports up to ~2^(levels-2) keys).
  unsigned sketchLevels = 14;
  /// Support threshold scale: Delta_j = max(1, theta * 2^j * k * t / f).
  double theta = 0.05;
  /// SparseOneShot: sparsity budget multiplier (sketch holds
  /// sparseSlack * 4f entries; sent+received copies of 2f mismatches).
  int sparseSlack = 2;
  /// SparseOneShot: rows per sparse-recovery sketch.
  int sparseRows = 5;
};

/// Fixed round layout of the compiled algorithm (all nodes know it).
struct ByzSchedule {
  int z = 0;
  int sketchSteps = 0;     // 2*DTP + 1
  int eccSteps = 0;        // chunks * (DTP + 1)
  int chunks = 0;
  int roundsPerIteration = 0;
  int roundsPerSimRound = 0;
  int totalRounds = 0;

  [[nodiscard]] static ByzSchedule compute(const PackingKnowledge& pk,
                                           int innerRounds, int f,
                                           const ByzOptions& opts);
};

/// Cross-node shared state: instrumentation (the B_j mismatch-decay series
/// of Lemma 3.8) and, in Contract mode, the ideal-functionality registries.
struct ByzShared {
  /// bj[simRound][j] = number of incorrect estimates after iteration j
  /// (index 0 = before any correction).
  std::vector<std::vector<long>> bj;

  /// Ground-truth sent messages of the current sim round:
  /// (sender, receiver) -> encoded key.  Written by senders at exchange.
  std::map<std::pair<graph::NodeId, graph::NodeId>, std::uint64_t> sentTruth;

  // --- Contract-mode registries (ideal functionality; see rs_engine.h) ---
  std::shared_ptr<adv::CorruptionLedger> ledger;
  std::unique_ptr<ContractOracle> oracle;
  /// All nodes' stream entries for the current iteration.
  std::vector<std::pair<std::uint64_t, std::int64_t>> iterationEntries;
  /// tree -> true sketch seed chosen by the root this iteration.
  std::map<int, std::uint64_t> trueSeeds;
  /// True ECC shares [chunk][tree] registered by the root this iteration.
  std::vector<std::vector<gf::F16>> trueShares;
  /// Absolute round at which the current sketch / ECC block started.
  int sketchBlockStart = 0;
  int eccBlockStart = 0;
};

/// Compiles `inner` into its f-mobile-resilient equivalent over the given
/// packing knowledge.  `shared` carries instrumentation and (for
/// EngineMode::Contract) must have `ledger` set to the network's ledger.
[[nodiscard]] sim::Algorithm compileByzantineTree(
    const graph::Graph& g, const sim::Algorithm& inner,
    std::shared_ptr<const PackingKnowledge> pk, int f, ByzOptions opts = {},
    std::shared_ptr<ByzShared> shared = nullptr);

}  // namespace mobile::compile
