#include "compile/rs_engine.h"

#include <algorithm>

namespace mobile::compile {

ContractOracle::ContractOracle(std::shared_ptr<adv::CorruptionLedger> ledger,
                               const PackingKnowledge& pk,
                               const graph::Graph& g)
    : ledger_(std::move(ledger)) {
  treeEdges_.resize(static_cast<std::size_t>(pk.k));
  for (graph::NodeId v = 0; v < g.nodeCount(); ++v) {
    const NodeTreeView view = pk.view(v);
    for (int t = 0; t < pk.k; ++t) {
      const graph::NodeId p = view.parent(t);
      if (p >= 0) {
        const graph::EdgeId e = g.edgeBetween(v, p);
        if (e >= 0) treeEdges_[static_cast<std::size_t>(t)].insert(e);
      }
    }
  }
}

long ContractOracle::corruptions(int tree, int fromRound, int toRound) const {
  return ledger_->countInWindow(fromRound, toRound,
                                treeEdges_[static_cast<std::size_t>(tree)]);
}

bool ContractOracle::survives(int tree, int fromRound, int toRound, int steps,
                              int cRS) const {
  const long threshold = std::max(1, steps / std::max(1, cRS));
  return corruptions(tree, fromRound, toRound) < threshold;
}

}  // namespace mobile::compile
