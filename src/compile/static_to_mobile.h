// Theorem 1.2: the static-to-mobile secure simulation.
//
// Given an r-round f-static-secure algorithm A and a threshold parameter t,
// produces an r' = 2r + t round algorithm A' that is f'-mobile-secure with
// f' = floor(f*(t+1)/(r+t)); for t >= 2fr, f' = f.
//
// Phase 1 (rounds 1..r+t): every ordered neighbor pair exchanges uniform
// random words R_j(u, v).
// Phase 2 (rounds r+t+1..r'): A is simulated round-by-round; the round-i
// message m_i(u,v) is sent as m_i(u,v) XOR K_i(u,v), where the pads K_i come
// from the Vandermonde key pool (Lemma A.1 / Theorem 2.1).  The receiver
// unmasks before delivering to its inner A instance, so A' computes exactly
// what A computes.
//
// Security intuition made measurable: on *good* edges (eavesdropped <= t
// rounds of phase 1) all phase-2 traffic is marginally uniform; at most f
// edges are bad, and A's f-static security covers those.  The experiments
// verify (a) exact output equivalence, (b) chi-square uniformity of traffic
// observed on good edges, (c) view indistinguishability across inputs.
#pragma once

#include <memory>

#include "sim/network.h"
#include "sim/node.h"

namespace mobile::compile {

struct StaticToMobileStats {
  int exchangeRounds = 0;  // r + t
  int totalRounds = 0;     // 2r + t
  int mobileF = 0;         // f' achieved for a given static f
};

/// Compiles `inner` (declared r rounds) into the 2r+t-round mobile-secure
/// algorithm.  `staticF` is the f of the given static-secure algorithm and
/// only feeds the f' computation in stats; the construction itself is
/// oblivious to it.
[[nodiscard]] sim::Algorithm compileStaticToMobile(
    const graph::Graph& g, const sim::Algorithm& inner, int t,
    StaticToMobileStats* stats = nullptr, int staticF = 0);

}  // namespace mobile::compile
