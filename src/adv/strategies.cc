#include "adv/strategies.h"

#include <algorithm>
#include <cassert>

namespace mobile::adv {

namespace {

Spec eavesSpec(Mobility mob, int f, std::vector<EdgeId> staticSet = {}) {
  Spec s;
  s.kind = Kind::Eavesdrop;
  s.mobility = mob;
  s.f = f;
  s.staticSet = std::move(staticSet);
  return s;
}

Spec byzSpec(Mobility mob, int f, long total = 0,
             std::vector<EdgeId> staticSet = {}) {
  Spec s;
  s.kind = Kind::Byzantine;
  s.mobility = mob;
  s.f = f;
  s.totalBudget = total;
  s.staticSet = std::move(staticSet);
  return s;
}

}  // namespace

Msg garbageMsg(util::Rng& rng, std::size_t words) {
  Msg m;
  garbageMsgInto(rng, m, words);
  return m;
}

void garbageMsgInto(util::Rng& rng, Msg& m, std::size_t words) {
  sim::resetScratch(m);
  for (std::size_t i = 0; i < words; ++i) m.push(rng.next());
}

// --- eavesdroppers ---------------------------------------------------------

RandomEavesdropper::RandomEavesdropper(int f, std::uint64_t seed)
    : Adversary(eavesSpec(Mobility::Mobile, f)), rng_(seed) {}

void RandomEavesdropper::act(TamperView& view) {
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t take =
      std::min<std::size_t>(m, static_cast<std::size_t>(spec_.f));
  rng_.sampleDistinctInto(m, take, pick_);
  for (const std::size_t e : pick_)
    recordView(view.observe(static_cast<EdgeId>(e)));
}

CampingEavesdropper::CampingEavesdropper(std::vector<EdgeId> targets, int f)
    : Adversary(eavesSpec(Mobility::Mobile, f)), targets_(std::move(targets)) {
  assert(static_cast<int>(targets_.size()) <= f);
}

void CampingEavesdropper::act(TamperView& view) {
  for (const EdgeId e : targets_) recordView(view.observe(e));
}

SweepingEavesdropper::SweepingEavesdropper(int f)
    : Adversary(eavesSpec(Mobility::Mobile, f)) {}

void SweepingEavesdropper::act(TamperView& view) {
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t take =
      std::min<std::size_t>(m, static_cast<std::size_t>(spec_.f));
  for (std::size_t i = 0; i < take; ++i) {
    recordView(view.observe(static_cast<EdgeId>(cursor_ % m)));
    ++cursor_;
  }
}

StaticEavesdropper::StaticEavesdropper(std::vector<EdgeId> fstar)
    : Adversary(eavesSpec(Mobility::Static, static_cast<int>(fstar.size()),
                          fstar)) {}

void StaticEavesdropper::act(TamperView& view) {
  for (const EdgeId e : spec_.staticSet) recordView(view.observe(e));
}

ScriptedEavesdropper::ScriptedEavesdropper(
    std::map<int, std::vector<EdgeId>> schedule, int f)
    : Adversary(eavesSpec(Mobility::Mobile, f)),
      schedule_(std::move(schedule)) {}

void ScriptedEavesdropper::act(TamperView& view) {
  const auto it = schedule_.find(view.round());
  if (it == schedule_.end()) return;
  for (const EdgeId e : it->second) recordView(view.observe(e));
}

// --- byzantine ---------------------------------------------------------------

RandomByzantine::RandomByzantine(int f, std::uint64_t seed)
    : Adversary(byzSpec(Mobility::Mobile, f)), rng_(seed) {}

void RandomByzantine::act(TamperView& view) {
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t take =
      std::min<std::size_t>(m, static_cast<std::size_t>(spec_.f));
  rng_.sampleDistinctInto(m, take, pick_);
  for (const std::size_t e : pick_) {
    // vu before uv: preserves the draw order of the old two-argument
    // garbageMsg call (right-to-left argument evaluation).
    garbageMsgInto(rng_, vu_);
    garbageMsgInto(rng_, uv_);
    view.corruptEdge(static_cast<EdgeId>(e), uv_, vu_);
  }
}

CampingByzantine::CampingByzantine(std::vector<EdgeId> targets, int f,
                                   std::uint64_t seed)
    : Adversary(byzSpec(Mobility::Mobile, f)),
      targets_(std::move(targets)),
      rng_(seed) {
  assert(static_cast<int>(targets_.size()) <= f);
}

void CampingByzantine::act(TamperView& view) {
  for (const EdgeId e : targets_) {
    garbageMsgInto(rng_, vu_);  // vu first: see RandomByzantine::act
    garbageMsgInto(rng_, uv_);
    view.corruptEdge(e, uv_, vu_);
  }
}

RotatingByzantine::RotatingByzantine(int f, std::uint64_t seed)
    : Adversary(byzSpec(Mobility::Mobile, f)), rng_(seed) {}

void RotatingByzantine::act(TamperView& view) {
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t take =
      std::min<std::size_t>(m, static_cast<std::size_t>(spec_.f));
  for (std::size_t i = 0; i < take; ++i) {
    garbageMsgInto(rng_, vu_);  // vu first: see RandomByzantine::act
    garbageMsgInto(rng_, uv_);
    view.corruptEdge(static_cast<EdgeId>(cursor_ % m), uv_, vu_);
    ++cursor_;
  }
}

TreeTargetedByzantine::TreeTargetedByzantine(int f,
                                             const graph::TreePacking& packing,
                                             const Graph& g, std::uint64_t seed)
    : Adversary(byzSpec(Mobility::Mobile, f)), rng_(seed) {
  (void)g;
  treeEdges_.reserve(packing.trees.size());
  for (const auto& t : packing.trees) treeEdges_.push_back(t.edges());
  hits_.assign(treeEdges_.size(), 0);
}

void TreeTargetedByzantine::act(TamperView& view) {
  // Pick the f least-hit trees and corrupt one random edge of each.
  order_.resize(treeEdges_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(),
            [&](std::size_t a, std::size_t b) { return hits_[a] < hits_[b]; });
  int used = 0;
  for (const std::size_t t : order_) {
    if (used >= spec_.f) break;
    if (treeEdges_[t].empty()) continue;
    const EdgeId e = treeEdges_[t][static_cast<std::size_t>(
        rng_.below(treeEdges_[t].size()))];
    const auto touched = view.touched();  // sorted ascending
    if (std::binary_search(touched.begin(), touched.end(), e))
      continue;  // already corrupted this round
    garbageMsgInto(rng_, vu_);  // vu first: see RandomByzantine::act
    garbageMsgInto(rng_, uv_);
    view.corruptEdge(e, uv_, vu_);
    ++hits_[t];
    ++used;
  }
}

BurstByzantine::BurstByzantine(int f, long totalBudget, int quietRounds,
                               int burstWidth, std::uint64_t seed)
    : Adversary(byzSpec(Mobility::RoundErrorRate, f, totalBudget)),
      quietRounds_(quietRounds),
      burstWidth_(burstWidth),
      rng_(seed) {}

void BurstByzantine::act(TamperView& view) {
  ++phase_;
  if (phase_ % (quietRounds_ + 1) != 0) return;  // hoard
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t want =
      std::min<std::size_t>({m, static_cast<std::size_t>(burstWidth_),
                             static_cast<std::size_t>(view.remaining())});
  rng_.sampleDistinctInto(m, want, pick_);
  for (const std::size_t e : pick_) {
    garbageMsgInto(rng_, vu_);  // vu first: see RandomByzantine::act
    garbageMsgInto(rng_, uv_);
    view.corruptEdge(static_cast<EdgeId>(e), uv_, vu_);
  }
}

ScriptedByzantine::ScriptedByzantine(
    std::map<int, std::vector<EdgeId>> schedule, long totalBudget,
    std::uint64_t seed)
    : Adversary(byzSpec(Mobility::RoundErrorRate, 0, totalBudget)),
      schedule_(std::move(schedule)),
      rng_(seed) {}

void ScriptedByzantine::act(TamperView& view) {
  const auto it = schedule_.find(view.round());
  if (it == schedule_.end()) return;
  for (const EdgeId e : it->second) {
    garbageMsgInto(rng_, vu_);  // vu first: see RandomByzantine::act
    garbageMsgInto(rng_, uv_);
    view.corruptEdge(e, uv_, vu_);
  }
}

BitflipByzantine::BitflipByzantine(int f, std::uint64_t seed)
    : Adversary(byzSpec(Mobility::Mobile, f)), rng_(seed) {}

void BitflipByzantine::act(TamperView& view) {
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t take =
      std::min<std::size_t>(m, static_cast<std::size_t>(spec_.f));
  rng_.sampleDistinctInto(m, take, pick_);
  for (const std::size_t ei : pick_) {
    const EdgeId e = static_cast<EdgeId>(ei);
    for (int dir = 0; dir < 2; ++dir) {
      const ArcId a = view.graph().arcOfEdge(e, dir);
      const sim::MsgView cur = view.peek(a);
      if (cur.present() && cur.size() > 0) {
        sim::assignMsg(work_, cur);
        work_.words[0] ^= 1ULL << rng_.below(8);
      } else {
        garbageMsgInto(rng_, work_);
      }
      view.corruptArc(a, work_);
    }
  }
}

}  // namespace mobile::adv
