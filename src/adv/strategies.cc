#include "adv/strategies.h"

#include <algorithm>
#include <cassert>

namespace mobile::adv {

namespace {

Spec eavesSpec(Mobility mob, int f, std::vector<EdgeId> staticSet = {}) {
  Spec s;
  s.kind = Kind::Eavesdrop;
  s.mobility = mob;
  s.f = f;
  s.staticSet = std::move(staticSet);
  return s;
}

Spec byzSpec(Mobility mob, int f, long total = 0,
             std::vector<EdgeId> staticSet = {}) {
  Spec s;
  s.kind = Kind::Byzantine;
  s.mobility = mob;
  s.f = f;
  s.totalBudget = total;
  s.staticSet = std::move(staticSet);
  return s;
}

}  // namespace

Msg garbageMsg(util::Rng& rng, std::size_t words) {
  Msg m;
  for (std::size_t i = 0; i < words; ++i) m.push(rng.next());
  return m;
}

// --- eavesdroppers ---------------------------------------------------------

RandomEavesdropper::RandomEavesdropper(int f, std::uint64_t seed)
    : Adversary(eavesSpec(Mobility::Mobile, f)), rng_(seed) {}

void RandomEavesdropper::act(TamperView& view) {
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t take =
      std::min<std::size_t>(m, static_cast<std::size_t>(spec_.f));
  for (const std::size_t e : rng_.sampleDistinct(m, take))
    recordView(view.observe(static_cast<EdgeId>(e)));
}

CampingEavesdropper::CampingEavesdropper(std::vector<EdgeId> targets, int f)
    : Adversary(eavesSpec(Mobility::Mobile, f)), targets_(std::move(targets)) {
  assert(static_cast<int>(targets_.size()) <= f);
}

void CampingEavesdropper::act(TamperView& view) {
  for (const EdgeId e : targets_) recordView(view.observe(e));
}

SweepingEavesdropper::SweepingEavesdropper(int f)
    : Adversary(eavesSpec(Mobility::Mobile, f)) {}

void SweepingEavesdropper::act(TamperView& view) {
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t take =
      std::min<std::size_t>(m, static_cast<std::size_t>(spec_.f));
  for (std::size_t i = 0; i < take; ++i) {
    recordView(view.observe(static_cast<EdgeId>(cursor_ % m)));
    ++cursor_;
  }
}

StaticEavesdropper::StaticEavesdropper(std::vector<EdgeId> fstar)
    : Adversary(eavesSpec(Mobility::Static, static_cast<int>(fstar.size()),
                          fstar)) {}

void StaticEavesdropper::act(TamperView& view) {
  for (const EdgeId e : spec_.staticSet) recordView(view.observe(e));
}

ScriptedEavesdropper::ScriptedEavesdropper(
    std::map<int, std::vector<EdgeId>> schedule, int f)
    : Adversary(eavesSpec(Mobility::Mobile, f)),
      schedule_(std::move(schedule)) {}

void ScriptedEavesdropper::act(TamperView& view) {
  const auto it = schedule_.find(view.round());
  if (it == schedule_.end()) return;
  for (const EdgeId e : it->second) recordView(view.observe(e));
}

// --- byzantine ---------------------------------------------------------------

RandomByzantine::RandomByzantine(int f, std::uint64_t seed)
    : Adversary(byzSpec(Mobility::Mobile, f)), rng_(seed) {}

void RandomByzantine::act(TamperView& view) {
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t take =
      std::min<std::size_t>(m, static_cast<std::size_t>(spec_.f));
  for (const std::size_t e : rng_.sampleDistinct(m, take))
    view.corruptEdge(static_cast<EdgeId>(e), garbageMsg(rng_),
                     garbageMsg(rng_));
}

CampingByzantine::CampingByzantine(std::vector<EdgeId> targets, int f,
                                   std::uint64_t seed)
    : Adversary(byzSpec(Mobility::Mobile, f)),
      targets_(std::move(targets)),
      rng_(seed) {
  assert(static_cast<int>(targets_.size()) <= f);
}

void CampingByzantine::act(TamperView& view) {
  for (const EdgeId e : targets_)
    view.corruptEdge(e, garbageMsg(rng_), garbageMsg(rng_));
}

RotatingByzantine::RotatingByzantine(int f, std::uint64_t seed)
    : Adversary(byzSpec(Mobility::Mobile, f)), rng_(seed) {}

void RotatingByzantine::act(TamperView& view) {
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t take =
      std::min<std::size_t>(m, static_cast<std::size_t>(spec_.f));
  for (std::size_t i = 0; i < take; ++i) {
    view.corruptEdge(static_cast<EdgeId>(cursor_ % m), garbageMsg(rng_),
                     garbageMsg(rng_));
    ++cursor_;
  }
}

TreeTargetedByzantine::TreeTargetedByzantine(int f,
                                             const graph::TreePacking& packing,
                                             const Graph& g, std::uint64_t seed)
    : Adversary(byzSpec(Mobility::Mobile, f)), rng_(seed) {
  (void)g;
  treeEdges_.reserve(packing.trees.size());
  for (const auto& t : packing.trees) treeEdges_.push_back(t.edges());
  hits_.assign(treeEdges_.size(), 0);
}

void TreeTargetedByzantine::act(TamperView& view) {
  // Pick the f least-hit trees and corrupt one random edge of each.
  std::vector<std::size_t> order(treeEdges_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return hits_[a] < hits_[b]; });
  int used = 0;
  for (const std::size_t t : order) {
    if (used >= spec_.f) break;
    if (treeEdges_[t].empty()) continue;
    const EdgeId e = treeEdges_[t][static_cast<std::size_t>(
        rng_.below(treeEdges_[t].size()))];
    if (view.touched().count(e)) continue;  // already corrupted this round
    view.corruptEdge(e, garbageMsg(rng_), garbageMsg(rng_));
    ++hits_[t];
    ++used;
  }
}

BurstByzantine::BurstByzantine(int f, long totalBudget, int quietRounds,
                               int burstWidth, std::uint64_t seed)
    : Adversary(byzSpec(Mobility::RoundErrorRate, f, totalBudget)),
      quietRounds_(quietRounds),
      burstWidth_(burstWidth),
      rng_(seed) {}

void BurstByzantine::act(TamperView& view) {
  ++phase_;
  if (phase_ % (quietRounds_ + 1) != 0) return;  // hoard
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t want =
      std::min<std::size_t>({m, static_cast<std::size_t>(burstWidth_),
                             static_cast<std::size_t>(view.remaining())});
  for (const std::size_t e : rng_.sampleDistinct(m, want))
    view.corruptEdge(static_cast<EdgeId>(e), garbageMsg(rng_),
                     garbageMsg(rng_));
}

ScriptedByzantine::ScriptedByzantine(
    std::map<int, std::vector<EdgeId>> schedule, long totalBudget,
    std::uint64_t seed)
    : Adversary(byzSpec(Mobility::RoundErrorRate, 0, totalBudget)),
      schedule_(std::move(schedule)),
      rng_(seed) {}

void ScriptedByzantine::act(TamperView& view) {
  const auto it = schedule_.find(view.round());
  if (it == schedule_.end()) return;
  for (const EdgeId e : it->second)
    view.corruptEdge(e, garbageMsg(rng_), garbageMsg(rng_));
}

BitflipByzantine::BitflipByzantine(int f, std::uint64_t seed)
    : Adversary(byzSpec(Mobility::Mobile, f)), rng_(seed) {}

void BitflipByzantine::act(TamperView& view) {
  const auto m = static_cast<std::size_t>(view.graph().edgeCount());
  const std::size_t take =
      std::min<std::size_t>(m, static_cast<std::size_t>(spec_.f));
  for (const std::size_t ei : rng_.sampleDistinct(m, take)) {
    const EdgeId e = static_cast<EdgeId>(ei);
    for (int dir = 0; dir < 2; ++dir) {
      const ArcId a = view.graph().arcOfEdge(e, dir);
      Msg mcopy = view.peek(a).toMsg();
      if (mcopy.present && mcopy.size() > 0) {
        mcopy.words[0] ^= 1ULL << rng_.below(8);
      } else {
        mcopy = garbageMsg(rng_);
      }
      view.corruptArc(a, mcopy);
    }
  }
}

}  // namespace mobile::adv
