// Concrete adversary strategies used across tests and benchmarks.
//
// The paper's adversary is all-powerful (knows topology + algorithm, sees
// all traffic when byzantine) but oblivious to node randomness.  These
// strategies span the behaviours the theorems must survive:
//   * random        -- baseline noise;
//   * camping       -- parks on the same f edges every round (defeats naive
//                      repetition; legal for a mobile adversary);
//   * sweeping      -- rotates over all edges, maximizing coverage (the
//                      worst case for the key-pool averaging bound A.1);
//   * tree-targeted -- spreads hits across distinct packing trees to
//                      maximize the number of corrupted tree protocols
//                      (stress for Lemma 3.3);
//   * burst         -- round-error-rate: hoards budget, then floods
//                      (stress for the rewind compiler, Section 4);
//   * bitflip       -- minimal perturbations that defeat checksum-free
//                      designs.
#pragma once

#include <map>
#include <vector>

#include "adv/adversary.h"
#include "graph/tree_packing.h"
#include "util/rng.h"

namespace mobile::adv {

/// Eavesdropper choosing f fresh random edges per round.
class RandomEavesdropper final : public Adversary {
 public:
  RandomEavesdropper(int f, std::uint64_t seed);
  void act(TamperView& view) override;

 private:
  util::Rng rng_;
  std::vector<std::size_t> pick_;  // per-round sample scratch
};

/// Eavesdropper camping on a fixed set (mobile-legal worst case for pools).
class CampingEavesdropper final : public Adversary {
 public:
  CampingEavesdropper(std::vector<EdgeId> targets, int f);
  void act(TamperView& view) override;

 private:
  std::vector<EdgeId> targets_;
};

/// Eavesdropper sweeping deterministically across the edge space.
class SweepingEavesdropper final : public Adversary {
 public:
  explicit SweepingEavesdropper(int f);
  void act(TamperView& view) override;

 private:
  std::size_t cursor_ = 0;
};

/// Static eavesdropper with a fixed F*.
class StaticEavesdropper final : public Adversary {
 public:
  explicit StaticEavesdropper(std::vector<EdgeId> fstar);
  void act(TamperView& view) override;
};

/// Fully scripted mobile eavesdropper: observes exactly the edges listed
/// for each round.  Used to demonstrate time-scheduled attacks (e.g. the
/// share-harvesting adversary that defeats *static*-secure unicast, the
/// motivation for Lemma A.3).
class ScriptedEavesdropper final : public Adversary {
 public:
  ScriptedEavesdropper(std::map<int, std::vector<EdgeId>> schedule, int f);
  void act(TamperView& view) override;

 private:
  std::map<int, std::vector<EdgeId>> schedule_;
};

/// Byzantine randomizing f random edges per round with garbage.
class RandomByzantine final : public Adversary {
 public:
  RandomByzantine(int f, std::uint64_t seed);
  void act(TamperView& view) override;

 private:
  util::Rng rng_;
  std::vector<std::size_t> pick_;  // per-round sample scratch
  Msg uv_, vu_;                    // garbage scratch (capacity retained)
};

/// Byzantine camping on fixed edges, replacing messages with garbage.
/// Mobile-legal; the canonical killer of the naive repetition baseline.
class CampingByzantine final : public Adversary {
 public:
  CampingByzantine(std::vector<EdgeId> targets, int f, std::uint64_t seed);
  void act(TamperView& view) override;

 private:
  std::vector<EdgeId> targets_;
  util::Rng rng_;
  Msg uv_, vu_;  // garbage scratch (capacity retained)
};

/// Byzantine rotating over all edges (touches everything eventually).
class RotatingByzantine final : public Adversary {
 public:
  RotatingByzantine(int f, std::uint64_t seed);
  void act(TamperView& view) override;

 private:
  std::size_t cursor_ = 0;
  util::Rng rng_;
  Msg uv_, vu_;  // garbage scratch (capacity retained)
};

/// Byzantine that spreads corruption across as many *distinct packing
/// trees* as possible: each round it picks f edges belonging to trees it
/// has hit least often.  The strongest structured attack on Lemma 3.3.
class TreeTargetedByzantine final : public Adversary {
 public:
  TreeTargetedByzantine(int f, const graph::TreePacking& packing,
                        const Graph& g, std::uint64_t seed);
  void act(TamperView& view) override;

 private:
  std::vector<std::vector<EdgeId>> treeEdges_;
  std::vector<long> hits_;
  util::Rng rng_;
  std::vector<std::size_t> order_;  // per-round tree ordering scratch
  Msg uv_, vu_;                     // garbage scratch (capacity retained)
};

/// Round-error-rate burst adversary: quiet for `quietRounds`, then spends
/// its hoard corrupting `burstWidth` edges per round until exhausted;
/// repeats.  totalBudget must be set in the spec.
class BurstByzantine final : public Adversary {
 public:
  BurstByzantine(int f, long totalBudget, int quietRounds, int burstWidth,
                 std::uint64_t seed);
  void act(TamperView& view) override;

 private:
  int quietRounds_;
  int burstWidth_;
  int phase_ = 0;
  util::Rng rng_;
  std::vector<std::size_t> pick_;  // per-round sample scratch
  Msg uv_, vu_;                    // garbage scratch (capacity retained)
};

/// Fully scripted byzantine: corrupts exactly the edges listed per round
/// with garbage.  Lets experiments place corruption surgically (e.g.
/// overwhelm the rewind compiler's correction capacity in chosen global
/// rounds while honoring an average-rate budget).
class ScriptedByzantine final : public Adversary {
 public:
  ScriptedByzantine(std::map<int, std::vector<EdgeId>> schedule,
                    long totalBudget, std::uint64_t seed);
  void act(TamperView& view) override;

 private:
  std::map<int, std::vector<EdgeId>> schedule_;
  util::Rng rng_;
  Msg uv_, vu_;  // garbage scratch (capacity retained)
};

/// Byzantine flipping one low bit of each present message on its edges.
class BitflipByzantine final : public Adversary {
 public:
  BitflipByzantine(int f, std::uint64_t seed);
  void act(TamperView& view) override;

 private:
  util::Rng rng_;
  std::vector<std::size_t> pick_;  // per-round sample scratch
  Msg work_;                       // flip/garbage scratch (capacity retained)
};

/// Helper: random garbage message resembling CONGEST traffic.
[[nodiscard]] Msg garbageMsg(util::Rng& rng, std::size_t words = 1);

/// Scratch form: refills `m` with `words` fresh garbage words in place,
/// reusing its capacity -- the zero-alloc path the strategies use every
/// round.  Draws exactly the same RNG sequence as garbageMsg.
void garbageMsgInto(util::Rng& rng, Msg& m, std::size_t words = 1);

}  // namespace mobile::adv
