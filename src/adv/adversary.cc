#include "adv/adversary.h"

#include <algorithm>

namespace mobile::adv {

long CorruptionLedger::countInWindow(int fromRound, int toRound,
                                     const std::set<EdgeId>& edges) const {
  long count = 0;
  const int lo = std::max(1, fromRound);
  const int hi = std::min(static_cast<int>(perRound_.size()), toRound);
  for (int r = lo; r <= hi; ++r)
    for (const EdgeId e : perRound_[static_cast<std::size_t>(r - 1)])
      if (edges.count(e)) ++count;
  return count;
}

TamperView::TamperView(const Graph& g, const Spec& spec, int round,
                       sim::ShardedPlane& plane, long budgetUsedSoFar)
    : g_(g),
      spec_(spec),
      round_(round),
      plane_(plane),
      budgetUsedBefore_(budgetUsedSoFar) {}

sim::MsgView TamperView::peek(ArcId a) const {
  if (spec_.kind != Kind::Byzantine)
    throw std::logic_error("eavesdroppers may only read observed edges");
  return plane_.view(a);
}

int TamperView::remaining() const {
  switch (spec_.mobility) {
    case Mobility::Static:
    case Mobility::Mobile:
      return spec_.f - static_cast<int>(touched_.size());
    case Mobility::RoundErrorRate: {
      const long left = spec_.totalBudget - budgetUsedBefore_ -
                        static_cast<long>(touched_.size());
      return static_cast<int>(std::max<long>(0, left));
    }
  }
  return 0;
}

void TamperView::charge(EdgeId e) {
  if (touched_.count(e)) return;  // an edge is charged once per round
  switch (spec_.mobility) {
    case Mobility::Static: {
      const bool member =
          std::find(spec_.staticSet.begin(), spec_.staticSet.end(), e) !=
          spec_.staticSet.end();
      if (!member)
        throw std::logic_error("static adversary touched edge outside F*");
      if (static_cast<int>(touched_.size()) >= spec_.f)
        throw std::logic_error("static adversary exceeded f");
      break;
    }
    case Mobility::Mobile:
      if (static_cast<int>(touched_.size()) >= spec_.f)
        throw std::logic_error("mobile adversary exceeded per-round f");
      break;
    case Mobility::RoundErrorRate:
      if (budgetUsedBefore_ + static_cast<long>(touched_.size()) >=
          spec_.totalBudget)
        throw std::logic_error("round-error-rate adversary exceeded budget");
      break;
  }
  touched_.insert(e);
}

void TamperView::corruptArc(ArcId a, const Msg& replacement) {
  if (spec_.kind != Kind::Byzantine)
    throw std::logic_error("only byzantine adversaries corrupt");
  const EdgeId e = g_.arcEdge(a);
  charge(e);
  // Copy-on-touch: the first corruption of an edge materializes both arcs'
  // pre-images for the ledger diff -- O(touched) total, never O(arcs).
  if (preTouched_.find(e) == preTouched_.end()) {
    auto& pre = preTouched_[e];
    pre.first = plane_.msg(g_.arcOfEdge(e, 0));
    pre.second = plane_.msg(g_.arcOfEdge(e, 1));
    snapshotWords_ += pre.first.words.size() + pre.second.words.size();
  }
  plane_.putMsgAdversary(a, replacement);
}

void TamperView::corruptEdge(EdgeId e, const Msg& uv, const Msg& vu) {
  corruptArc(g_.arcOfEdge(e, 0), uv);
  corruptArc(g_.arcOfEdge(e, 1), vu);
}

ViewRecord TamperView::observe(EdgeId e) {
  if (spec_.kind != Kind::Eavesdrop)
    throw std::logic_error("observe is the eavesdropper surface");
  charge(e);
  ViewRecord r;
  r.round = round_;
  r.edge = e;
  r.uv = plane_.msg(g_.arcOfEdge(e, 0));
  r.vu = plane_.msg(g_.arcOfEdge(e, 1));
  return r;
}

}  // namespace mobile::adv
