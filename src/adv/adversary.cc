#include "adv/adversary.h"

#include <algorithm>

namespace mobile::adv {

long CorruptionLedger::countInWindow(int fromRound, int toRound,
                                     const std::set<EdgeId>& edges) const {
  // entryRound_ is ascending, so the 1-based window [fromRound, toRound]
  // maps to one contiguous slice of the history: binary-search its bounds
  // and scan only the entries inside -- O(log total + window), matching
  // the old per-round CSR walk (rewind protocols query hot).
  if (toRound < 1 || toRound < fromRound) return 0;
  const int lo0 = fromRound > 1 ? fromRound - 1 : 0;  // 0-based bounds
  const auto lo = std::lower_bound(entryRound_.begin(), entryRound_.end(), lo0);
  const auto hi = std::upper_bound(lo, entryRound_.end(), toRound - 1);
  long count = 0;
  for (auto it = lo; it != hi; ++it) {
    const auto i = static_cast<std::size_t>(it - entryRound_.begin());
    if (edges.count(entries_[i]) != 0) ++count;
  }
  return count;
}

TamperView::TamperView(const Graph& g, const Spec& spec, int round,
                       sim::ShardedPlane& plane, long budgetUsedSoFar,
                       TamperScratch& scratch)
    : g_(g),
      spec_(spec),
      round_(round),
      plane_(plane),
      scratch_(scratch),
      budgetUsedBefore_(budgetUsedSoFar) {
  scratch_.beginRound();
}

sim::MsgView TamperView::peek(ArcId a) const {
  if (spec_.kind != Kind::Byzantine)
    throw std::logic_error("eavesdroppers may only read observed edges");
  return plane_.view(a);
}

int TamperView::remaining() const {
  switch (spec_.mobility) {
    case Mobility::Static:
    case Mobility::Mobile:
      return spec_.f - static_cast<int>(scratch_.touched.size());
    case Mobility::RoundErrorRate: {
      const long left = spec_.totalBudget - budgetUsedBefore_ -
                        static_cast<long>(scratch_.touched.size());
      return static_cast<int>(std::max<long>(0, left));
    }
  }
  return 0;
}

bool TamperView::charge(EdgeId e) {
  auto& touched = scratch_.touched;
  const auto it = std::lower_bound(touched.begin(), touched.end(), e);
  if (it != touched.end() && *it == e)
    return false;  // an edge is charged once per round
  switch (spec_.mobility) {
    case Mobility::Static: {
      const bool member =
          std::find(spec_.staticSet.begin(), spec_.staticSet.end(), e) !=
          spec_.staticSet.end();
      if (!member)
        throw std::logic_error("static adversary touched edge outside F*");
      if (static_cast<int>(touched.size()) >= spec_.f)
        throw std::logic_error("static adversary exceeded f");
      break;
    }
    case Mobility::Mobile:
      if (static_cast<int>(touched.size()) >= spec_.f)
        throw std::logic_error("mobile adversary exceeded per-round f");
      break;
    case Mobility::RoundErrorRate:
      if (budgetUsedBefore_ + static_cast<long>(touched.size()) >=
          spec_.totalBudget)
        throw std::logic_error("round-error-rate adversary exceeded budget");
      break;
  }
  touched.insert(it, e);  // keeps the vector sorted; O(f) moves, f is small
  return true;
}

void TamperView::corruptArc(ArcId a, const Msg& replacement) {
  if (spec_.kind != Kind::Byzantine)
    throw std::logic_error("only byzantine adversaries corrupt");
  const EdgeId e = g_.arcEdge(a);
  // Copy-on-touch: the first corruption of an edge materializes both arcs'
  // pre-images into the scratch arena for the ledger diff -- O(touched)
  // total, never O(arcs).  Only corruptArc charges byzantine edges, so
  // "first charge" and "no snapshot yet" coincide.
  if (charge(e)) {
    TamperScratch::PreImage p;
    p.edge = e;
    const sim::MsgView uv = plane_.view(g_.arcOfEdge(e, 0));
    p.uvPresent = uv.present();
    p.uvOff = scratch_.words.size();
    if (p.uvPresent) {
      p.uvLen = uv.size();
      scratch_.words.insert(scratch_.words.end(), uv.data(),
                            uv.data() + p.uvLen);
    }
    const sim::MsgView vu = plane_.view(g_.arcOfEdge(e, 1));
    p.vuPresent = vu.present();
    p.vuOff = scratch_.words.size();
    if (p.vuPresent) {
      p.vuLen = vu.size();
      scratch_.words.insert(scratch_.words.end(), vu.data(),
                            vu.data() + p.vuLen);
    }
    scratch_.pre.push_back(p);
    snapshotWords_ += p.uvLen + p.vuLen;
  }
  plane_.putMsgAdversary(a, replacement);
}

void TamperView::corruptEdge(EdgeId e, const Msg& uv, const Msg& vu) {
  corruptArc(g_.arcOfEdge(e, 0), uv);
  corruptArc(g_.arcOfEdge(e, 1), vu);
}

ViewRecord TamperView::observe(EdgeId e) {
  if (spec_.kind != Kind::Eavesdrop)
    throw std::logic_error("observe is the eavesdropper surface");
  charge(e);
  ViewRecord r;
  r.round = round_;
  r.edge = e;
  r.uv = plane_.msg(g_.arcOfEdge(e, 0));
  r.vu = plane_.msg(g_.arcOfEdge(e, 1));
  return r;
}

std::span<const TamperScratch::PreImage> TamperView::preImages() {
  // Touch order -> edge order so the Network's diff (and thus the ledger
  // record order) matches the old std::map-keyed iteration.
  std::sort(scratch_.pre.begin(), scratch_.pre.end(),
            [](const TamperScratch::PreImage& a,
               const TamperScratch::PreImage& b) { return a.edge < b.edge; });
  return {scratch_.pre.data(), scratch_.pre.size()};
}

}  // namespace mobile::adv
