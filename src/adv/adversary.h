// Adversary framework (Section 1.4 of the paper).
//
// Two families:
//  * eavesdroppers -- passive; observe both directions of <= f chosen edges
//    per round (static: a fixed set; mobile: a fresh set each round);
//  * byzantine -- active; see *all* traffic every round and rewrite both
//    arcs of <= f chosen edges (static / mobile / round-error-rate, where
//    the budget is f * r edge-rounds in total, burstable).
//
// All adversaries know the topology and the algorithm but are oblivious to
// node-private randomness: strategies receive only the graph, the round
// number, current messages (byzantine) or their own past observations
// (eavesdroppers), and an adversary-private RNG.
//
// The TamperView enforces the per-model budgets and snapshots each touched
// edge's pre-image *copy-on-touch*: the first corruption of an edge in a
// round materializes both arcs' current messages, so the Network's ledger
// ground truth is a diff over O(touched edges), never over the whole plane
// (mutation outside the view is impossible -- the arena plane is only
// reachable through it).  All per-round adversary state lives in a
// TamperScratch the Network owns and lends to each round's view, so the
// steady state allocates nothing: touched edges are a sorted flat vector,
// and pre-image snapshots are (offset, len) slices of one shared word
// arena.  The CorruptionLedger stays the ground truth used by accounting,
// tests, and the ContractEngine ideal functionality (see DESIGN.md); it
// stores its history sparsely (edges tagged with their round) so a
// fault-free round costs nothing and recording a corruption never
// allocates after warm-up.  docs/architecture.md section 2 describes the
// contract.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sim/message.h"
#include "sim/sharded_plane.h"
#include "util/rng.h"

namespace mobile::adv {

using graph::ArcId;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;
using sim::Msg;

enum class Kind { Eavesdrop, Byzantine };
enum class Mobility { Static, Mobile, RoundErrorRate };

struct Spec {
  Kind kind = Kind::Byzantine;
  Mobility mobility = Mobility::Mobile;
  int f = 0;                 // per-round edge budget (RER: the average rate)
  long totalBudget = 0;      // RER only: f * r edge-rounds
  std::vector<EdgeId> staticSet;  // Static only: the fixed F*
};

/// One observation by an eavesdropper: both directions of one edge.
struct ViewRecord {
  int round = 0;
  EdgeId edge = -1;
  Msg uv;  // message u -> v (edge endpoints with u < v)
  Msg vu;
};

/// Ground truth of byzantine interference, filled by the Network.
/// History is sparse: `entries_` concatenates every recorded edge in
/// round order and `entryRound_` tags each with its 0-based round index,
/// so a round that records nothing costs nothing -- beginRound() is a
/// counter bump (never allocates; fault-free steady-state rounds stay
/// heap-silent, pinned by the test_obs probe) and record() only pays the
/// amortized growth of the actual corruption history.
class CorruptionLedger {
 public:
  void beginRound(int round) {
    round_ = round;
    ++roundsBegun_;
  }
  void record(EdgeId e) {
    entries_.push_back(e);
    entryRound_.push_back(
        roundsBegun_ == 0 ? 0 : static_cast<int>(roundsBegun_) - 1);
    ++total_;
  }
  [[nodiscard]] long total() const { return total_; }

  /// Number of rounds begun so far.
  [[nodiscard]] std::size_t rounds() const { return roundsBegun_; }
  /// Edges recorded in round index `i` (0-based; round i+1 of the run).
  /// Entries land in round order, so the round's block is contiguous.
  [[nodiscard]] std::span<const EdgeId> roundEntries(std::size_t i) const {
    const int r = static_cast<int>(i);
    const auto lo = std::lower_bound(entryRound_.begin(), entryRound_.end(), r);
    const auto hi = std::upper_bound(lo, entryRound_.end(), r);
    return {entries_.data() + (lo - entryRound_.begin()),
            static_cast<std::size_t>(hi - lo)};
  }
  /// Per-round view of the whole history (tests and probes; a vector of
  /// spans over the CSR, not a copy of the entries).
  [[nodiscard]] std::vector<std::span<const EdgeId>> byRound() const {
    std::vector<std::span<const EdgeId>> out;
    out.reserve(roundsBegun_);
    for (std::size_t i = 0; i < roundsBegun_; ++i)
      out.push_back(roundEntries(i));
    return out;
  }

  /// Corrupted edge-rounds intersecting `edges` within rounds
  /// [fromRound, toRound] (1-based, inclusive).
  [[nodiscard]] long countInWindow(int fromRound, int toRound,
                                   const std::set<EdgeId>& edges) const;

  /// Forgets all recorded history (Network::reset() support), keeping the
  /// CSR capacity.  Shared ledger holders see the wipe too -- reset is a
  /// whole-trial operation.
  void clear() {
    round_ = 0;
    total_ = 0;
    roundsBegun_ = 0;
    entries_.clear();
    entryRound_.clear();
  }

 private:
  int round_ = 0;
  long total_ = 0;
  std::size_t roundsBegun_ = 0;
  std::vector<EdgeId> entries_;
  std::vector<int> entryRound_;  // parallel to entries_; 0-based, ascending
};

/// Reusable per-round state for a TamperView.  The Network owns one and
/// lends it to every round's view; beginRound() rewinds the vectors in
/// place, so after warm-up the adversary phase allocates nothing.
struct TamperScratch {
  /// One copy-on-touch pre-image: both arcs of an edge, stored as slices
  /// of the shared `words` arena (an absent arc has present == false and
  /// len == 0).
  struct PreImage {
    EdgeId edge = -1;
    bool uvPresent = false;
    bool vuPresent = false;
    std::size_t uvOff = 0, uvLen = 0;
    std::size_t vuOff = 0, vuLen = 0;
  };

  std::vector<EdgeId> touched;       // charged edges, kept sorted ascending
  std::vector<PreImage> pre;         // touch order; TamperView sorts on demand
  std::vector<std::uint64_t> words;  // shared snapshot arena

  void beginRound() {
    touched.clear();
    pre.clear();
    words.clear();
  }
};

/// The per-round interface the Network hands the adversary.
class TamperView {
 public:
  TamperView(const Graph& g, const Spec& spec, int round,
             sim::ShardedPlane& plane, long budgetUsedSoFar,
             TamperScratch& scratch);

  [[nodiscard]] int round() const { return round_; }
  [[nodiscard]] const Graph& graph() const { return g_; }

  // --- byzantine surface -------------------------------------------------
  /// Read any arc's current message (byzantine adversaries see everything).
  [[nodiscard]] sim::MsgView peek(ArcId a) const;
  /// Rewrite (or inject / drop) the message on arc `a`.  Charges the edge
  /// and snapshots its pre-image on first touch.
  void corruptArc(ArcId a, const Msg& replacement);
  /// Convenience: rewrite both directions.
  void corruptEdge(EdgeId e, const Msg& uv, const Msg& vu);

  // --- eavesdropper surface ------------------------------------------------
  /// Observe both directions of edge `e`; charges the edge.
  [[nodiscard]] ViewRecord observe(EdgeId e);

  /// Edges already charged this round, sorted ascending (membership is a
  /// std::binary_search).
  [[nodiscard]] std::span<const EdgeId> touched() const {
    return {scratch_.touched.data(), scratch_.touched.size()};
  }

  /// Remaining per-round budget.
  [[nodiscard]] int remaining() const;

  // --- copy-on-touch ledger support ---------------------------------------
  /// Pre-images of every byzantine-touched edge (both arcs as slices of
  /// snapshotArena()), sorted ascending by edge -- the Network diffs
  /// exactly these against the post-adversary plane, so the ledger costs
  /// O(touched).  Sorts the scratch in place; call after act() returns.
  [[nodiscard]] std::span<const TamperScratch::PreImage> preImages();
  /// Base of the shared snapshot arena the PreImage slices index into.
  [[nodiscard]] const std::uint64_t* snapshotArena() const {
    return scratch_.words.data();
  }
  /// Words materialized by copy-on-touch snapshots (the O(f) cost proof
  /// surface; the Network accumulates it per run).
  [[nodiscard]] std::uint64_t snapshotWordsCopied() const {
    return snapshotWords_;
  }

 private:
  /// Charges the edge against the budget; true when this is the edge's
  /// first touch this round.
  bool charge(EdgeId e);

  const Graph& g_;
  const Spec& spec_;
  int round_;
  sim::ShardedPlane& plane_;
  TamperScratch& scratch_;
  std::uint64_t snapshotWords_ = 0;
  long budgetUsedBefore_;
};

/// Strategy interface.
class Adversary {
 public:
  explicit Adversary(Spec spec) : spec_(std::move(spec)) {}
  virtual ~Adversary() = default;

  [[nodiscard]] const Spec& spec() const { return spec_; }

  /// Acts on the round's messages through the budget-enforcing view.
  virtual void act(TamperView& view) = 0;

  /// Eavesdropper accumulated view (empty for byzantine strategies).
  [[nodiscard]] const std::vector<ViewRecord>& viewLog() const {
    return viewLog_;
  }

 protected:
  void recordView(ViewRecord r) { viewLog_.push_back(std::move(r)); }

  Spec spec_;
  std::vector<ViewRecord> viewLog_;
};

}  // namespace mobile::adv
