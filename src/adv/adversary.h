// Adversary framework (Section 1.4 of the paper).
//
// Two families:
//  * eavesdroppers -- passive; observe both directions of <= f chosen edges
//    per round (static: a fixed set; mobile: a fresh set each round);
//  * byzantine -- active; see *all* traffic every round and rewrite both
//    arcs of <= f chosen edges (static / mobile / round-error-rate, where
//    the budget is f * r edge-rounds in total, burstable).
//
// All adversaries know the topology and the algorithm but are oblivious to
// node-private randomness: strategies receive only the graph, the round
// number, current messages (byzantine) or their own past observations
// (eavesdroppers), and an adversary-private RNG.
//
// The TamperView enforces the per-model budgets and snapshots each touched
// edge's pre-image *copy-on-touch*: the first corruption of an edge in a
// round materializes both arcs' current messages, so the Network's ledger
// ground truth is a diff over O(touched edges), never over the whole plane
// (mutation outside the view is impossible -- the arena plane is only
// reachable through it).  The CorruptionLedger stays the ground truth used
// by accounting, tests, and the ContractEngine ideal functionality (see
// DESIGN.md).  docs/architecture.md section 2 describes the contract.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sim/message.h"
#include "sim/sharded_plane.h"
#include "util/rng.h"

namespace mobile::adv {

using graph::ArcId;
using graph::EdgeId;
using graph::Graph;
using graph::NodeId;
using sim::Msg;

enum class Kind { Eavesdrop, Byzantine };
enum class Mobility { Static, Mobile, RoundErrorRate };

struct Spec {
  Kind kind = Kind::Byzantine;
  Mobility mobility = Mobility::Mobile;
  int f = 0;                 // per-round edge budget (RER: the average rate)
  long totalBudget = 0;      // RER only: f * r edge-rounds
  std::vector<EdgeId> staticSet;  // Static only: the fixed F*
};

/// One observation by an eavesdropper: both directions of one edge.
struct ViewRecord {
  int round = 0;
  EdgeId edge = -1;
  Msg uv;  // message u -> v (edge endpoints with u < v)
  Msg vu;
};

/// Ground truth of byzantine interference, filled by the Network.
class CorruptionLedger {
 public:
  void beginRound(int round) {
    round_ = round;
    perRound_.emplace_back();
  }
  void record(EdgeId e) {
    perRound_.back().push_back(e);
    ++total_;
  }
  [[nodiscard]] long total() const { return total_; }
  [[nodiscard]] const std::vector<std::vector<EdgeId>>& byRound() const {
    return perRound_;
  }
  /// Corrupted edge-rounds intersecting `edges` within rounds
  /// [fromRound, toRound] (1-based, inclusive).
  [[nodiscard]] long countInWindow(int fromRound, int toRound,
                                   const std::set<EdgeId>& edges) const;

  /// Forgets all recorded history (Network::reset() support).  Shared
  /// ledger holders see the wipe too -- reset is a whole-trial operation.
  void clear() {
    round_ = 0;
    total_ = 0;
    perRound_.clear();
  }

 private:
  int round_ = 0;
  long total_ = 0;
  std::vector<std::vector<EdgeId>> perRound_;
};

/// The per-round interface the Network hands the adversary.
class TamperView {
 public:
  TamperView(const Graph& g, const Spec& spec, int round,
             sim::ShardedPlane& plane, long budgetUsedSoFar);

  [[nodiscard]] int round() const { return round_; }
  [[nodiscard]] const Graph& graph() const { return g_; }

  // --- byzantine surface -------------------------------------------------
  /// Read any arc's current message (byzantine adversaries see everything).
  [[nodiscard]] sim::MsgView peek(ArcId a) const;
  /// Rewrite (or inject / drop) the message on arc `a`.  Charges the edge
  /// and snapshots its pre-image on first touch.
  void corruptArc(ArcId a, const Msg& replacement);
  /// Convenience: rewrite both directions.
  void corruptEdge(EdgeId e, const Msg& uv, const Msg& vu);

  // --- eavesdropper surface ------------------------------------------------
  /// Observe both directions of edge `e`; charges the edge.
  [[nodiscard]] ViewRecord observe(EdgeId e);

  /// Edges already charged this round.
  [[nodiscard]] const std::set<EdgeId>& touched() const { return touched_; }

  /// Remaining per-round budget.
  [[nodiscard]] int remaining() const;

  // --- copy-on-touch ledger support ---------------------------------------
  /// Pre-images of every byzantine-touched edge (both arcs, u->v then
  /// v->u), keyed ascending by edge -- the Network diffs exactly these
  /// against the post-adversary plane, so the ledger costs O(touched).
  [[nodiscard]] const std::map<EdgeId, std::pair<Msg, Msg>>& preTouched()
      const {
    return preTouched_;
  }
  /// Words materialized by copy-on-touch snapshots (the O(f) cost proof
  /// surface; the Network accumulates it per run).
  [[nodiscard]] std::uint64_t snapshotWordsCopied() const {
    return snapshotWords_;
  }

 private:
  void charge(EdgeId e);

  const Graph& g_;
  const Spec& spec_;
  int round_;
  sim::ShardedPlane& plane_;
  std::set<EdgeId> touched_;
  std::map<EdgeId, std::pair<Msg, Msg>> preTouched_;
  std::uint64_t snapshotWords_ = 0;
  long budgetUsedBefore_;
};

/// Strategy interface.
class Adversary {
 public:
  explicit Adversary(Spec spec) : spec_(std::move(spec)) {}
  virtual ~Adversary() = default;

  [[nodiscard]] const Spec& spec() const { return spec_; }

  /// Acts on the round's messages through the budget-enforcing view.
  virtual void act(TamperView& view) = 0;

  /// Eavesdropper accumulated view (empty for byzantine strategies).
  [[nodiscard]] const std::vector<ViewRecord>& viewLog() const {
    return viewLog_;
  }

 protected:
  void recordView(ViewRecord r) { viewLog_.push_back(std::move(r)); }

  Spec spec_;
  std::vector<ViewRecord> viewLog_;
};

}  // namespace mobile::adv
