// Families of bounded-independence hash functions (Definition 4 /
// Lemma 1.11 of the paper).
//
// A degree-(c-1) polynomial over the prime field F_p (p = 2^61 - 1) with
// uniformly random coefficients is a c-wise independent function
// [N] -> F_p; composing with a range reduction gives the {0,1}^a -> {0,1}^b
// families the paper consumes.  Choosing a function costs c field elements
// of seed, exactly matching the c * max(a, b) random-bit bound.
//
// Used by:
//  * Theorem 1.3 (congestion-sensitive compiler): a 4*f*cong-wise family
//    masks all non-empty messages so they are jointly uniform to the
//    adversary.
//  * Section 4 (rewind-if-error): pairwise-independent transcript hashes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace mobile::hash {

class CwiseHash {
 public:
  /// Draws a random member of the c-wise independent family, using `rng` as
  /// the seed source.  `outputBits` <= 61.
  CwiseHash(std::size_t c, unsigned outputBits, util::Rng& rng);

  /// Constructs from explicit coefficients (for distributing a shared seed
  /// through the network, as the compiler of Theorem 1.3 does).
  CwiseHash(std::vector<std::uint64_t> coefficients, unsigned outputBits);

  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const;

  [[nodiscard]] std::size_t independence() const { return coeff_.size(); }
  [[nodiscard]] const std::vector<std::uint64_t>& coefficients() const {
    return coeff_;
  }
  [[nodiscard]] unsigned outputBits() const { return outputBits_; }

  /// Seed size in 64-bit words for a given independence level.
  [[nodiscard]] static std::size_t seedWords(std::size_t c) { return c; }

 private:
  std::vector<std::uint64_t> coeff_;  // degree c-1 polynomial, low-to-high
  unsigned outputBits_;
  std::uint64_t mask_;
};

}  // namespace mobile::hash
