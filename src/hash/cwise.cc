#include "hash/cwise.h"

#include <cassert>

#include "gf/fp61.h"

namespace mobile::hash {

CwiseHash::CwiseHash(std::size_t c, unsigned outputBits, util::Rng& rng)
    : outputBits_(outputBits) {
  assert(c >= 1);
  assert(outputBits >= 1 && outputBits <= 61);
  coeff_.reserve(c);
  for (std::size_t i = 0; i < c; ++i) coeff_.push_back(rng.next() % gf::kP61);
  mask_ = (outputBits == 61) ? gf::kP61 : ((1ULL << outputBits) - 1);
}

CwiseHash::CwiseHash(std::vector<std::uint64_t> coefficients,
                     unsigned outputBits)
    : coeff_(std::move(coefficients)), outputBits_(outputBits) {
  assert(!coeff_.empty());
  assert(outputBits >= 1 && outputBits <= 61);
  for (auto& c : coeff_) c %= gf::kP61;
  mask_ = (outputBits == 61) ? gf::kP61 : ((1ULL << outputBits) - 1);
}

std::uint64_t CwiseHash::operator()(std::uint64_t x) const {
  const std::uint64_t xr = x % gf::kP61;
  // Horner evaluation of the degree-(c-1) polynomial.
  std::uint64_t acc = 0;
  for (std::size_t i = coeff_.size(); i-- > 0;)
    acc = gf::addP61(gf::mulP61(acc, xr), coeff_[i]);
  return acc & mask_;
}

}  // namespace mobile::hash
