#include "hash/fingerprint.h"

#include "gf/fp61.h"
#include "util/rng.h"

namespace mobile::hash {

TranscriptFingerprint::TranscriptFingerprint(std::uint64_t seed) : seed_(seed) {
  std::uint64_t st = seed;
  // Derive (z, shift) from the seed; z != 0 so distinct-length transcripts
  // of zeros still separate.
  point_ = util::splitmix64(st) % (gf::kP61 - 1) + 1;
  shift_ = util::splitmix64(st) % gf::kP61;
}

std::uint64_t TranscriptFingerprint::hash(
    const std::vector<std::uint64_t>& transcript) const {
  std::uint64_t acc = shift_;
  std::uint64_t zp = point_;
  for (const std::uint64_t s : transcript) {
    // Map symbols to non-zero residues so zero symbols still contribute
    // (otherwise appending 0s would not change the fingerprint).
    acc = gf::addP61(acc, gf::mulP61(s % (gf::kP61 - 1) + 1, zp));
    zp = gf::mulP61(zp, point_);
  }
  return acc;
}

std::uint64_t TranscriptFingerprint::extend(std::uint64_t acc,
                                            std::size_t length,
                                            std::uint64_t symbol) const {
  const std::uint64_t zp = gf::powP61(point_, length + 1);
  return gf::addP61(acc, gf::mulP61(symbol % (gf::kP61 - 1) + 1, zp));
}

}  // namespace mobile::hash
