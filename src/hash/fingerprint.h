// Pairwise-independent transcript fingerprints for the rewind-if-error
// compiler (Section 4).
//
// Each global-round, a sender u draws a fresh random seed R_i(u,v) and
// transmits h_{R}(pi_i(u,v)) alongside its message; the receiver compares
// against h_{R}(~pi_i(u,v)).  Because the transcripts are fixed *before* R
// is drawn, unequal transcripts collide with probability <= L/2^tau
// (footnote 19 of the paper).  We fingerprint a string s_1..s_L as a
// polynomial evaluation sum s_j * z^j mod p at a random point z derived from
// the seed -- the standard Rabin-Karp / polynomial identity fingerprint.
#pragma once

#include <cstdint>
#include <vector>

namespace mobile::hash {

class TranscriptFingerprint {
 public:
  explicit TranscriptFingerprint(std::uint64_t seed);

  /// Fingerprints the sequence of symbols.
  [[nodiscard]] std::uint64_t hash(
      const std::vector<std::uint64_t>& transcript) const;

  /// Incremental form: extend a running fingerprint with one more symbol.
  /// hash(t + [s]) == extend(hash(t), |t|, s).
  [[nodiscard]] std::uint64_t extend(std::uint64_t acc, std::size_t length,
                                     std::uint64_t symbol) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t point_;   // evaluation point z
  std::uint64_t shift_;   // additive pairwise-independence term
};

}  // namespace mobile::hash
