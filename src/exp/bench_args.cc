#include "exp/bench_args.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace mobile::exp {

namespace {
[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s [--smoke] [--threads N] [--json PATH] [--csv PATH]"
               " [--seed N] [--list]\n"
               "  --smoke       run the reduced (CI) grid: tiny n/f, few "
               "seeds\n"
               "  --threads N   parallel lanes, N >= 1 (default: all "
               "hardware cores)\n"
               "  --json PATH   write aggregate group summaries as JSON\n"
               "  --csv PATH    write raw per-trial records as CSV\n"
               "  --seed N      base seed offset for the sweeps (default 0)\n"
               "  --list        print the scenario/registry names this "
               "binary exposes\n"
               "  --trace PATH  write a Chrome trace (spans + metrics) to "
               "PATH at exit\n",
               argv0);
  std::exit(code);
}

const char* takeValue(int& argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
    std::exit(2);
  }
  return argv[++i];
}
}  // namespace

BenchArgs parseBenchArgs(int& argc, char** argv, bool allowUnknown) {
  BenchArgs args;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(argv[0], 0);
    } else if (std::strcmp(a, "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(a, "--threads") == 0) {
      args.threads = std::atoi(takeValue(argc, argv, i, "--threads"));
      // An explicit nonpositive lane count used to slip through here and
      // only resolve to "all cores" below -- surprising for --threads 0,
      // plain wrong for garbage like --threads -4.  Warn and run serial.
      if (args.threads < 1) {
        std::fprintf(stderr,
                     "%s: --threads %d is not a lane count; clamping to 1\n",
                     argv[0], args.threads);
        args.threads = 1;
      }
    } else if (std::strcmp(a, "--json") == 0) {
      args.jsonPath = takeValue(argc, argv, i, "--json");
    } else if (std::strcmp(a, "--csv") == 0) {
      args.csvPath = takeValue(argc, argv, i, "--csv");
    } else if (std::strcmp(a, "--seed") == 0) {
      args.seed = std::strtoull(takeValue(argc, argv, i, "--seed"), nullptr,
                                0);
    } else if (std::strcmp(a, "--list") == 0) {
      args.list = true;
    } else if (std::strcmp(a, "--trace") == 0) {
      args.tracePath = takeValue(argc, argv, i, "--trace");
    } else if (allowUnknown) {
      argv[out++] = argv[i];  // keep for the wrapped arg parser
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], a);
      usage(argv[0], 2);
    }
  }
  argc = out;
  argv[argc] = nullptr;
  if (args.threads <= 0) args.threads = util::ThreadPool::hardwareThreads();
  if (!args.tracePath.empty()) obs::enableTracingToFile(args.tracePath);
  return args;
}

namespace {
// A report the caller asked for that cannot be produced is a harness
// failure, not a shrug: smoke_bench.sh treats a missing per-bench JSON as
// "this bench dropped out of the trajectory", so fail loudly instead.
std::ofstream openOrDie(const std::string& path, const char* what) {
  std::ofstream os(path);
  if (!os.is_open()) {
    std::fprintf(stderr, "cannot open %s output '%s'\n", what, path.c_str());
    std::exit(1);
  }
  return os;
}
}  // namespace

void maybeWriteReports(const BenchArgs& args, const std::string& bench,
                       const std::vector<TrialResult>& trials) {
  if (!args.csvPath.empty()) {
    std::ofstream os = openOrDie(args.csvPath, "--csv");
    writeTrialsCsv(os, trials);
    if (os.fail()) {
      std::fprintf(stderr, "write to '%s' failed\n", args.csvPath.c_str());
      std::exit(1);
    }
  }
  if (!args.jsonPath.empty()) {
    std::ofstream os = openOrDie(args.jsonPath, "--json");
    writeSummariesJson(os, bench, aggregate(trials));
    if (os.fail()) {
      std::fprintf(stderr, "write to '%s' failed\n", args.jsonPath.c_str());
      std::exit(1);
    }
  }
}

}  // namespace mobile::exp
