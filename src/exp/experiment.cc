#include "exp/experiment.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace mobile::exp {

namespace {

/// Process peak RSS in KB (getrusage; Linux reports ru_maxrss in KB).
long peakRssKb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;
}

}  // namespace

TrialResult runTrial(const TrialSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  const obs::TraceArg trialArgs[] = {
      {"seed", static_cast<std::int64_t>(spec.seed)}};
  const obs::Span span("exp", "trial", trialArgs, 1);

  TrialResult r;
  r.group = spec.group;
  r.seed = spec.seed;
  // A sim::PlaneError anywhere in the trial -- transport retry budget
  // exhausted, round-barrier timeout -- degrades to a structured error
  // record instead of taking down the sweep.  Anything else (logic_error
  // on a bandwidth violation, bad_alloc) still propagates: those are bugs,
  // not environment faults.
  try {
    const graph::Graph g = spec.graphFactory();
    const sim::Algorithm algo = spec.algoFactory(g);
    std::unique_ptr<adv::Adversary> adversary;
    if (spec.adversaryFactory) adversary = spec.adversaryFactory(g);

    sim::NetworkOptions netOpts = spec.net;
    if (spec.planeFactory) netOpts.planeImpl = spec.planeFactory(g);
    sim::Network net(g, algo, spec.seed, adversary.get(), netOpts);
    const int budget = spec.maxRounds > 0 ? spec.maxRounds : algo.rounds;
    if (spec.runExact)
      net.runExact(budget);
    else
      net.run(budget);

    r.rounds = net.roundsExecuted();
    // Merge per-engine accounting through the plane: identity on the arena
    // plane, a cross-rank splice on a partitioned one.  Replica ranks come
    // back record=false -- their numbers went to the owning rank.
    sim::TrialMerge merge;
    merge.outputs = net.outputs();
    merge.arcTraffic = net.arcTraffic();
    merge.messages = net.messagesSent();
    merge.maxWords = net.maxWordsObserved();
    merge.corruptions = net.ledger().total();
    r.record = net.plane().mergeTrial(merge);
    r.transport = merge.transport;
    r.maxWords = merge.maxWords;
    r.normalizedRounds =
        static_cast<long>(r.rounds) * static_cast<long>(std::max<std::size_t>(
                                          1, r.maxWords));
    r.messages = merge.messages;
    r.maxCongestion = sim::maxEdgeCongestionOf(g, merge.arcTraffic);
    r.corruptions = merge.corruptions;
    r.fingerprint = sim::fingerprintOutputs(merge.outputs);
    r.ok = !spec.expect || r.fingerprint == *spec.expect;
    if (obs::enabled()) {
      // Per-trial metric snapshot: the engine's phase wall-time split rides
      // TrialResult::extra into the campaign JSONL line.
      const auto& ms = net.phaseMillis();
      for (std::size_t i = 0; i < sim::Network::kPhaseCount; ++i)
        r.extra[std::string("t_") + sim::Network::kPhaseNames[i] + "_ms"] =
            ms[i];
    }
    if (spec.observe) spec.observe(net, adversary.get(), r);
  } catch (const sim::PlaneError& e) {
    r.ok = false;
    r.error = e.what();
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.peakRssKb = peakRssKb();
  if (spec.onComplete) spec.onComplete(r);
  return r;
}

ExperimentDriver::ExperimentDriver(DriverOptions opts) : opts_(opts) {
  opts_.numThreads = std::max(1, opts_.numThreads);
  if (opts_.numThreads > 1)
    pool_ = std::make_unique<util::ThreadPool>(opts_.numThreads);
}

ExperimentDriver::~ExperimentDriver() = default;

std::vector<TrialResult> ExperimentDriver::runAll(
    const std::vector<TrialSpec>& specs) {
  std::vector<TrialResult> results(specs.size());
  const auto runOne = [&](std::size_t i) { results[i] = runTrial(specs[i]); };
  if (pool_)
    pool_->parallelFor(specs.size(), runOne, /*grain=*/1);
  else
    for (std::size_t i = 0; i < specs.size(); ++i) runOne(i);
  return results;
}

MetricSummary summarizeMetric(std::vector<double> xs) {
  MetricSummary m;
  if (xs.empty()) return m;
  std::sort(xs.begin(), xs.end());
  m.min = xs.front();
  m.max = xs.back();
  const std::size_t n = xs.size();
  m.median = n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
  double sum = 0.0;
  for (const double x : xs) sum += x;
  m.mean = sum / static_cast<double>(n);
  double var = 0.0;
  for (const double x : xs) var += (x - m.mean) * (x - m.mean);
  m.stddev = n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
  return m;
}

std::vector<GroupSummary> aggregate(const std::vector<TrialResult>& results) {
  std::vector<std::string> order;
  std::map<std::string, std::vector<const TrialResult*>> byGroup;
  for (const auto& r : results) {
    auto [it, fresh] = byGroup.try_emplace(r.group);
    if (fresh) order.push_back(r.group);
    it->second.push_back(&r);
  }

  std::vector<GroupSummary> out;
  out.reserve(order.size());
  for (const auto& group : order) {
    const auto& trials = byGroup[group];
    GroupSummary s;
    s.group = group;
    s.trials = trials.size();
    const auto collect = [&](auto proj) {
      std::vector<double> xs;
      xs.reserve(trials.size());
      for (const TrialResult* t : trials)
        xs.push_back(static_cast<double>(proj(*t)));
      return summarizeMetric(std::move(xs));
    };
    for (const TrialResult* t : trials)
      if (t->ok) ++s.okCount;
    s.rounds = collect([](const TrialResult& t) { return t.rounds; });
    s.normalizedRounds =
        collect([](const TrialResult& t) { return t.normalizedRounds; });
    s.messages = collect([](const TrialResult& t) { return t.messages; });
    s.maxCongestion =
        collect([](const TrialResult& t) { return t.maxCongestion; });
    s.corruptions =
        collect([](const TrialResult& t) { return t.corruptions; });
    s.wallMs = collect([](const TrialResult& t) { return t.wallMs; });
    for (const TrialResult* t : trials)
      for (const auto& [key, value] : t->extra) {
        (void)value;
        if (s.extra.count(key)) continue;
        std::vector<double> xs;
        for (const TrialResult* u : trials) {
          const auto it = u->extra.find(key);
          if (it != u->extra.end()) xs.push_back(it->second);
        }
        s.extra.emplace(key, summarizeMetric(std::move(xs)));
      }
    out.push_back(std::move(s));
  }
  return out;
}

namespace {
std::string meanSd(const MetricSummary& m) {
  if (m.stddev == 0.0) return util::Table::fixed(m.mean, 1);
  return util::Table::fixed(m.mean, 1) + " +-" +
         util::Table::fixed(m.stddev, 1);
}
}  // namespace

util::Table summaryTable(const std::vector<GroupSummary>& groups) {
  util::Table table({"group", "trials", "ok", "rounds", "norm rounds",
                     "messages", "max cong", "corruptions", "ms/trial"});
  for (const auto& s : groups) {
    table.addRow({s.group,
                  util::Table::num(static_cast<std::uint64_t>(s.trials)),
                  util::Table::num(static_cast<std::uint64_t>(s.okCount)) +
                      "/" +
                      util::Table::num(static_cast<std::uint64_t>(s.trials)),
                  meanSd(s.rounds), meanSd(s.normalizedRounds),
                  meanSd(s.messages), meanSd(s.maxCongestion),
                  meanSd(s.corruptions), util::Table::fixed(s.wallMs.mean, 2)});
  }
  return table;
}

void writeTrialsCsv(std::ostream& os, const std::vector<TrialResult>& results) {
  os << "group,seed,rounds,normalized_rounds,messages,max_congestion,"
        "max_words,corruptions,fingerprint,ok,wall_ms,extra\n";
  for (const auto& r : results) {
    os << '"' << r.group << "\"," << r.seed << ',' << r.rounds << ','
       << r.normalizedRounds << ',' << r.messages << ',' << r.maxCongestion
       << ',' << r.maxWords << ',' << r.corruptions << ',' << r.fingerprint
       << ',' << (r.ok ? 1 : 0) << ',' << r.wallMs << ",\"";
    bool first = true;
    for (const auto& [key, value] : r.extra) {
      if (!first) os << ';';
      first = false;
      os << key << '=' << value;
    }
    os << "\"\n";
  }
}

namespace {
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void writeMetric(std::ostream& os, const char* name, const MetricSummary& m,
                 bool trailingComma = true) {
  os << "      \"" << name << "\": {\"mean\": " << m.mean
     << ", \"median\": " << m.median << ", \"stddev\": " << m.stddev
     << ", \"min\": " << m.min << ", \"max\": " << m.max << "}"
     << (trailingComma ? "," : "") << "\n";
}
}  // namespace

void writeSummariesJson(std::ostream& os, const std::string& bench,
                        const std::vector<GroupSummary>& groups) {
  os << "{\n  \"bench\": \"" << jsonEscape(bench) << "\",\n";
  if (groups.empty()) {
    // Be explicit that this report carries no trial metrics (the bench ran
    // but is not — or not yet — wired through the ExperimentDriver), so
    // the BENCH_*.json trajectory never mistakes "listed" for "measured".
    os << "  \"note\": \"no trial-level metrics recorded\",\n";
  }
  os << "  \"groups\": [\n";
  for (std::size_t i = 0; i < groups.size(); ++i) {
    const auto& s = groups[i];
    os << "    {\n      \"group\": \"" << jsonEscape(s.group) << "\",\n"
       << "      \"trials\": " << s.trials << ",\n"
       << "      \"ok\": " << s.okCount << ",\n";
    writeMetric(os, "rounds", s.rounds);
    writeMetric(os, "normalized_rounds", s.normalizedRounds);
    writeMetric(os, "messages", s.messages);
    writeMetric(os, "max_congestion", s.maxCongestion);
    writeMetric(os, "corruptions", s.corruptions);
    writeMetric(os, "wall_ms", s.wallMs, /*trailingComma=*/!s.extra.empty());
    if (!s.extra.empty()) {
      os << "      \"extra\": {";
      bool first = true;
      for (const auto& [key, m] : s.extra) {
        if (!first) os << ", ";
        first = false;
        os << "\"" << jsonEscape(key) << "\": {\"mean\": " << m.mean
           << ", \"median\": " << m.median << ", \"stddev\": " << m.stddev
           << ", \"min\": " << m.min << ", \"max\": " << m.max << "}";
      }
      os << "}\n";
    }
    os << "    }" << (i + 1 < groups.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace mobile::exp
