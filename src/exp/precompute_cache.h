// Shared cache for trusted preprocessing (the ROADMAP "packings are
// recomputed per trial" item).
//
// Every sweep in the paper reruns one (graph, algorithm) pair over many
// seeds and adversary budgets; the trusted-preprocessing outputs -- tree
// packings (Definition 6/7) and their distributed PackingKnowledge form --
// depend only on the graph structure and the packing parameters, never on
// the seed.  Trial factories used to recompute them inside every
// algoFactory call; with the engine's per-round cost gone (ISSUE 3), that
// preprocessing dominated sweep wall time.
//
// PrecomputeCache keys results by (structuralFingerprint(graph), kind,
// k, root, depth) and hands out shared_ptr<const ...> so concurrent trials
// on the ExperimentDriver's pool share one computation.  Lookups and
// first-computations are serialized by a mutex: a packing is computed once
// even when many lanes ask for it simultaneously.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "compile/common.h"
#include "graph/graph.h"
#include "graph/tree_packing.h"

namespace mobile::util {
class ThreadPool;
}

namespace mobile::exp {

class PrecomputeCache {
 public:
  PrecomputeCache() = default;
  PrecomputeCache(const PrecomputeCache&) = delete;
  PrecomputeCache& operator=(const PrecomputeCache&) = delete;

  /// Process-wide instance benches and examples share.
  [[nodiscard]] static PrecomputeCache& global();

  /// Lends `pool` to cache-miss computations (tree packings, packing
  /// distribution) until reset.  Results are bit-identical with and without
  /// a pool -- the parallel builders merge in a fixed order -- so warming
  /// the cache through a pool and reading it from driver lanes is safe.
  /// The pool must outlive its registration; pooled sections are serialized
  /// internally because util::ThreadPool forbids concurrent parallelFor
  /// calls.  Pass nullptr to go back to sequential computation.
  void setComputePool(util::ThreadPool* pool);
  [[nodiscard]] util::ThreadPool* computePool() const;

  /// Star packing of the clique (Theorem 1.6): k = n, DTP = 2, eta = 2.
  [[nodiscard]] std::shared_ptr<const graph::TreePacking> starTreePacking(
      const graph::Graph& g);
  /// Appendix C greedy low-depth packing.
  [[nodiscard]] std::shared_ptr<const graph::TreePacking> greedyTreePacking(
      const graph::Graph& g, int k, graph::NodeId root, int depthCap);

  /// distributePacking(starTreePacking(g), depthBound) -- the
  /// trusted-preprocessing input of the clique compilers.
  [[nodiscard]] std::shared_ptr<const compile::PackingKnowledge> starPacking(
      const graph::Graph& g, int depthBound = 2);
  /// distributePacking(greedyTreePacking(g, k, root, depthCap), depthCap).
  [[nodiscard]] std::shared_ptr<const compile::PackingKnowledge> greedyPacking(
      const graph::Graph& g, int k, graph::NodeId root, int depthCap);

  // --- introspection (tests, cache-efficacy reporting) ---------------------
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;
  /// Drops every entry and zeroes the counters.
  void clear();

 private:
  // kind discriminates the product families sharing the map.
  enum class Kind : int { StarTree, GreedyTree, StarKnowledge, GreedyKnowledge };
  using Key = std::tuple<std::uint64_t, int, int, int, int>;

  [[nodiscard]] static Key key(Kind kind, const graph::Graph& g, int k,
                               graph::NodeId root, int depth);

  mutable std::mutex mu_;
  // Serializes pooled compute sections (ThreadPool::parallelFor is not
  // reentrant across callers).  Ordered after mu_: holders never take mu_.
  mutable std::mutex poolMu_;
  util::ThreadPool* pool_ = nullptr;
  std::map<Key, std::shared_ptr<const void>> entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace mobile::exp
