// Shared command-line surface for every bench (and example) binary.
//
// All harness binaries understand the same flags, so CI can sweep the
// whole bench fleet mechanically (scripts/smoke_bench.sh):
//   --smoke          tiny n/f grids, few seeds -- seconds, not minutes
//   --threads N      trial/engine parallelism, N >= 1 (explicit N < 1 is
//                    clamped to 1 with a warning; omitting the flag means
//                    hardware concurrency)
//   --json PATH      write the aggregate GroupSummary report (BENCH_*.json)
//   --csv PATH       write the raw per-trial records
//   --seed N         base seed offset for the binary's sweeps (default 0)
//   --list           print the scenario/registry names the binary exposes
//                    and exit (scenario-ported benches list their scn
//                    registry scenarios; mc_campaign lists all registries)
//   --trace PATH     enable observability and write a Chrome trace-event
//                    JSON (spans + metrics snapshot) to PATH at exit; a
//                    note is printed and the flag ignored when obs is
//                    compiled out (-DMOBILE_CONGEST_OBS=OFF)
// Recognized flags are consumed (argc/argv are compacted) so wrappers like
// bench_micro can forward the remainder to Google Benchmark.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.h"

namespace mobile::exp {

struct BenchArgs {
  bool smoke = false;
  /// Lanes for ExperimentDriver / NetworkOptions::numThreads.  Always >= 1
  /// after parseBenchArgs: an omitted flag resolves to every core the
  /// hardware offers, an explicit value < 1 is clamped to 1 (with a
  /// warning on stderr).
  int threads = 0;
  std::string jsonPath;
  std::string csvPath;
  /// Base seed offset applied by the binary to its sweeps (campaign
  /// runners shift every grid point's seed axis by this).
  std::uint64_t seed = 0;
  /// --list: the binary should print its scenario / registry catalog and
  /// exit instead of running.
  bool list = false;
  /// --trace: Chrome trace output path.  parseBenchArgs already armed
  /// obs::enableTracingToFile with it; kept here for reporting.
  std::string tracePath;
};

/// Parses and REMOVES recognized flags from argc/argv.  Prints usage and
/// exits 0 on --help; complains and exits 2 on an unknown flag unless
/// `allowUnknown` (set by wrappers that forward leftover args elsewhere).
/// `threads` is resolved to a concrete lane count (>= 1) before returning.
[[nodiscard]] BenchArgs parseBenchArgs(int& argc, char** argv,
                                       bool allowUnknown = false);

/// Writes the CSV/JSON reports requested on the command line (no-op when
/// the flags were not given).  `bench` names the experiment ("T5", ...).
void maybeWriteReports(const BenchArgs& args, const std::string& bench,
                       const std::vector<TrialResult>& trials);

}  // namespace mobile::exp
