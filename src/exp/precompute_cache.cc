#include "exp/precompute_cache.h"

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace mobile::exp {

namespace {

struct PreprocessMetricIds {
  obs::CounterId misses;
  obs::GaugeId pkBytes;
};

const PreprocessMetricIds& preprocessMetricIds() {
  static const PreprocessMetricIds ids = [] {
    PreprocessMetricIds m;
    obs::Registry& r = obs::registry();
    m.misses = r.counter("compile.preprocess_misses");
    m.pkBytes = r.gauge("compile.pk_bytes");
    return m;
  }();
  return ids;
}

void recordKnowledgeSize(const compile::PackingKnowledge& pk) {
  if (!obs::enabled()) return;
  obs::registry().set(preprocessMetricIds().pkBytes,
                      static_cast<std::uint64_t>(pk.memoryBytes()));
}

void recordMiss() {
  if (!obs::enabled()) return;
  obs::registry().add(preprocessMetricIds().misses, 1);
}

}  // namespace

PrecomputeCache& PrecomputeCache::global() {
  static PrecomputeCache cache;
  return cache;
}

void PrecomputeCache::setComputePool(util::ThreadPool* pool) {
  std::lock_guard<std::mutex> lock(poolMu_);
  pool_ = pool;
}

util::ThreadPool* PrecomputeCache::computePool() const {
  std::lock_guard<std::mutex> lock(poolMu_);
  return pool_;
}

PrecomputeCache::Key PrecomputeCache::key(Kind kind, const graph::Graph& g,
                                          int k, graph::NodeId root,
                                          int depth) {
  return {graph::structuralFingerprint(g), static_cast<int>(kind), k, root,
          depth};
}

std::shared_ptr<const graph::TreePacking> PrecomputeCache::starTreePacking(
    const graph::Graph& g) {
  const Key id = key(Kind::StarTree, g, 0, 0, 0);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(id); it != entries_.end()) {
    ++hits_;
    return std::static_pointer_cast<const graph::TreePacking>(it->second);
  }
  ++misses_;
  auto p =
      std::make_shared<const graph::TreePacking>(graph::cliqueStarPacking(g));
  entries_[id] = p;
  return p;
}

std::shared_ptr<const graph::TreePacking> PrecomputeCache::greedyTreePacking(
    const graph::Graph& g, int k, graph::NodeId root, int depthCap) {
  const Key id = key(Kind::GreedyTree, g, k, root, depthCap);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(id); it != entries_.end()) {
    ++hits_;
    return std::static_pointer_cast<const graph::TreePacking>(it->second);
  }
  ++misses_;
  recordMiss();
  const obs::TraceArg spanArgs[] = {{"n", g.nodeCount()}, {"k", k}};
  const obs::Span span("compile", "preprocess.greedy_tree", spanArgs, 2);
  std::lock_guard<std::mutex> plock(poolMu_);
  auto p = std::make_shared<const graph::TreePacking>(
      graph::greedyLowDepthPacking(g, k, root, depthCap, pool_));
  entries_[id] = p;
  return p;
}

std::shared_ptr<const compile::PackingKnowledge> PrecomputeCache::starPacking(
    const graph::Graph& g, int depthBound) {
  const Key id = key(Kind::StarKnowledge, g, 0, 0, depthBound);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = entries_.find(id); it != entries_.end()) {
      ++hits_;
      return std::static_pointer_cast<const compile::PackingKnowledge>(
          it->second);
    }
  }
  // Compute outside the lock so the nested tree-packing lookup can take it;
  // a racing lane at worst recomputes once and first-in wins below.
  const auto tree = starTreePacking(g);
  auto pk = [&] {
    const obs::TraceArg spanArgs[] = {{"n", g.nodeCount()},
                                      {"k", static_cast<int>(tree->size())}};
    const obs::Span span("compile", "preprocess.distribute", spanArgs, 2);
    std::lock_guard<std::mutex> plock(poolMu_);
    return compile::distributePacking(g, *tree, depthBound, pool_);
  }();
  recordKnowledgeSize(*pk);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(id); it != entries_.end())
    return std::static_pointer_cast<const compile::PackingKnowledge>(
        it->second);
  ++misses_;
  recordMiss();
  entries_[id] = std::shared_ptr<const compile::PackingKnowledge>(pk);
  return pk;
}

std::shared_ptr<const compile::PackingKnowledge> PrecomputeCache::greedyPacking(
    const graph::Graph& g, int k, graph::NodeId root, int depthCap) {
  const Key id = key(Kind::GreedyKnowledge, g, k, root, depthCap);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = entries_.find(id); it != entries_.end()) {
      ++hits_;
      return std::static_pointer_cast<const compile::PackingKnowledge>(
          it->second);
    }
  }
  const auto tree = greedyTreePacking(g, k, root, depthCap);
  auto pk = [&] {
    const obs::TraceArg spanArgs[] = {{"n", g.nodeCount()}, {"k", k}};
    const obs::Span span("compile", "preprocess.distribute", spanArgs, 2);
    std::lock_guard<std::mutex> plock(poolMu_);
    return compile::distributePacking(g, *tree, depthCap, pool_);
  }();
  recordKnowledgeSize(*pk);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(id); it != entries_.end())
    return std::static_pointer_cast<const compile::PackingKnowledge>(
        it->second);
  ++misses_;
  recordMiss();
  entries_[id] = std::shared_ptr<const compile::PackingKnowledge>(pk);
  return pk;
}

std::size_t PrecomputeCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t PrecomputeCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void PrecomputeCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace mobile::exp
