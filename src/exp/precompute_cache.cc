#include "exp/precompute_cache.h"

namespace mobile::exp {

PrecomputeCache& PrecomputeCache::global() {
  static PrecomputeCache cache;
  return cache;
}

PrecomputeCache::Key PrecomputeCache::key(Kind kind, const graph::Graph& g,
                                          int k, graph::NodeId root,
                                          int depth) {
  return {graph::structuralFingerprint(g), static_cast<int>(kind), k, root,
          depth};
}

std::shared_ptr<const graph::TreePacking> PrecomputeCache::starTreePacking(
    const graph::Graph& g) {
  const Key id = key(Kind::StarTree, g, 0, 0, 0);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(id); it != entries_.end()) {
    ++hits_;
    return std::static_pointer_cast<const graph::TreePacking>(it->second);
  }
  ++misses_;
  auto p =
      std::make_shared<const graph::TreePacking>(graph::cliqueStarPacking(g));
  entries_[id] = p;
  return p;
}

std::shared_ptr<const graph::TreePacking> PrecomputeCache::greedyTreePacking(
    const graph::Graph& g, int k, graph::NodeId root, int depthCap) {
  const Key id = key(Kind::GreedyTree, g, k, root, depthCap);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(id); it != entries_.end()) {
    ++hits_;
    return std::static_pointer_cast<const graph::TreePacking>(it->second);
  }
  ++misses_;
  auto p = std::make_shared<const graph::TreePacking>(
      graph::greedyLowDepthPacking(g, k, root, depthCap));
  entries_[id] = p;
  return p;
}

std::shared_ptr<const compile::PackingKnowledge> PrecomputeCache::starPacking(
    const graph::Graph& g, int depthBound) {
  const Key id = key(Kind::StarKnowledge, g, 0, 0, depthBound);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = entries_.find(id); it != entries_.end()) {
      ++hits_;
      return std::static_pointer_cast<const compile::PackingKnowledge>(
          it->second);
    }
  }
  // Compute outside the lock so the nested tree-packing lookup can take it;
  // a racing lane at worst recomputes once and first-in wins below.
  const auto tree = starTreePacking(g);
  auto pk = compile::distributePacking(g, *tree, depthBound);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(id); it != entries_.end())
    return std::static_pointer_cast<const compile::PackingKnowledge>(
        it->second);
  ++misses_;
  entries_[id] = std::shared_ptr<const compile::PackingKnowledge>(pk);
  return pk;
}

std::shared_ptr<const compile::PackingKnowledge> PrecomputeCache::greedyPacking(
    const graph::Graph& g, int k, graph::NodeId root, int depthCap) {
  const Key id = key(Kind::GreedyKnowledge, g, k, root, depthCap);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = entries_.find(id); it != entries_.end()) {
      ++hits_;
      return std::static_pointer_cast<const compile::PackingKnowledge>(
          it->second);
    }
  }
  const auto tree = greedyTreePacking(g, k, root, depthCap);
  auto pk = compile::distributePacking(g, *tree, depthCap);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(id); it != entries_.end())
    return std::static_pointer_cast<const compile::PackingKnowledge>(
        it->second);
  ++misses_;
  entries_[id] = std::shared_ptr<const compile::PackingKnowledge>(pk);
  return pk;
}

std::size_t PrecomputeCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t PrecomputeCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void PrecomputeCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace mobile::exp
