// The trial layer: batched, parallel experiment execution.
//
// Every experiment in the paper is a *sweep*: many independent trials over
// seeds x adversary budgets f x graph families.  A TrialSpec captures one
// trial as pure factories (graph, algorithm, adversary) plus a seed, so a
// trial owns everything it touches and trials are embarrassingly parallel.
// The ExperimentDriver fans a grid of specs over a util::ThreadPool --
// trial-level parallelism, the always-safe win -- and returns per-trial
// TrialResults in spec order, so results are identical no matter how many
// threads ran them (the determinism gtest enforces this).
//
// Aggregation groups results by TrialSpec::group into mean/median/stddev
// summaries ready for util::Table display and for the BENCH_*.json
// trajectory (writeSummariesJson / writeTrialsCsv).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adv/adversary.h"
#include "graph/graph.h"
#include "sim/network.h"
#include "util/table.h"

namespace mobile::util {
class ThreadPool;
}

namespace mobile::exp {

struct TrialResult;

/// One independent trial: factories are invoked fresh on the worker that
/// runs the trial (a trial shares nothing mutable with its siblings).
/// Standard idiom: build the graph once in the harness and capture it by
/// value -- `spec.graphFactory = [g] { return g; };`.
struct TrialSpec {
  /// Aggregation key and table label ("n=16,f=2"); trials with equal group
  /// are summarized together.
  std::string group;
  /// Network seed (node-private randomness derives from it).
  std::uint64_t seed = 1;

  std::function<graph::Graph()> graphFactory;
  std::function<sim::Algorithm(const graph::Graph&)> algoFactory;
  /// Optional; null means fault-free.  Called once per trial so stateful
  /// strategies (view logs, budgets) start fresh.
  std::function<std::unique_ptr<adv::Adversary>(const graph::Graph&)>
      adversaryFactory;

  sim::NetworkOptions net;
  /// Optional message-plane factory (e.g. a net::UdpPlane bound to the
  /// process transport); invoked fresh per trial and installed as
  /// net.planeImpl.  Null means the in-process arena plane.
  std::function<std::shared_ptr<sim::MessagePlane>(const graph::Graph&)>
      planeFactory;
  /// Round budget; 0 means the algorithm's declared rounds.
  int maxRounds = 0;
  /// Use Network::runExact instead of run (hold the full schedule).
  bool runExact = false;
  /// Expected outputs fingerprint; when set, TrialResult::ok reports the
  /// comparison (otherwise ok stays true).
  std::optional<std::uint64_t> expect;

  /// Optional post-run hook, invoked on the worker thread that ran the
  /// trial, before the result is returned.  Deposit bench-specific metrics
  /// into TrialResult::extra; do NOT touch state shared across trials.
  /// Only runs on success -- a trial that degrades with a plane error has
  /// no Network to observe.
  std::function<void(const sim::Network&, const adv::Adversary*,
                     TrialResult&)>
      observe;
  /// Optional completion hook, invoked on the worker thread for EVERY
  /// outcome -- success, fingerprint mismatch, or plane-error degradation
  /// -- right before the result is returned.  The campaign runner streams
  /// its JSONL record from here so transport failures still leave a
  /// structured per-trial line.
  std::function<void(TrialResult&)> onComplete;
};

struct TrialResult {
  std::string group;
  std::uint64_t seed = 0;
  int rounds = 0;             // rounds actually executed
  long normalizedRounds = 0;  // rounds x maxWords (honest CONGEST cost)
  long messages = 0;
  long maxCongestion = 0;
  std::size_t maxWords = 0;
  long corruptions = 0;  // CorruptionLedger::total()
  std::uint64_t fingerprint = 0;
  bool ok = true;  // fingerprint == expect (true when expect unset) AND no
                   // plane error
  /// Structured message-plane failure (sim::PlaneError text): transport
  /// retry budget exhausted, round-barrier timeout.  Empty on success.
  /// Campaign JSONL surfaces this as the "error" field.
  std::string error;
  /// False on a partitioned plane's replica ranks: the trial's accounting
  /// was shipped to the owning rank and this result must not be recorded.
  bool record = true;
  double wallMs = 0.0;
  /// Process peak resident set (KB, getrusage ru_maxrss) sampled when the
  /// trial finished -- a process-lifetime high-water mark recorded per
  /// trial so campaign JSONL charts the sweep's memory trajectory.
  long peakRssKb = 0;
  /// World-summed transport tallies from the message plane's merge
  /// (perfect-link retransmit/dedup, lossy injections, barrier wait).
  /// present only on a real multi-process plane; structural -- carried
  /// even when obs is compiled out.
  sim::TransportStats transport;
  /// Bench-specific metrics deposited by TrialSpec::observe, plus -- when
  /// obs::enabled() -- the engine's per-phase wall-time split
  /// ("t_<phase>_ms", see sim::Network::phaseMillis()).
  std::map<std::string, double> extra;
};

/// Runs one trial synchronously on the calling thread.
[[nodiscard]] TrialResult runTrial(const TrialSpec& spec);

struct DriverOptions {
  /// Trial-level lanes.  1 = sequential; results are identical either way.
  int numThreads = 1;
};

/// Fans a grid of specs over a thread pool; results come back in spec
/// order.  The driver owns its pool, so build it once per bench and reuse
/// it across sections.
class ExperimentDriver {
 public:
  explicit ExperimentDriver(DriverOptions opts = {});
  ~ExperimentDriver();

  [[nodiscard]] int numThreads() const { return opts_.numThreads; }

  [[nodiscard]] std::vector<TrialResult> runAll(
      const std::vector<TrialSpec>& specs);

 private:
  DriverOptions opts_;
  std::unique_ptr<util::ThreadPool> pool_;
};

/// Distribution of one metric across a group's trials.
struct MetricSummary {
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct GroupSummary {
  std::string group;
  std::size_t trials = 0;
  std::size_t okCount = 0;  // trials whose fingerprint matched expect
  MetricSummary rounds;
  MetricSummary normalizedRounds;
  MetricSummary messages;
  MetricSummary maxCongestion;
  MetricSummary corruptions;
  MetricSummary wallMs;
  /// Observe-hook metrics, summarized per key over the trials that
  /// reported that key.
  std::map<std::string, MetricSummary> extra;
};

[[nodiscard]] MetricSummary summarizeMetric(std::vector<double> xs);

/// Groups results by TrialSpec::group (first-seen order preserved).
[[nodiscard]] std::vector<GroupSummary> aggregate(
    const std::vector<TrialResult>& results);

/// "group | trials | ok | rounds (mean+-sd) | norm rounds | messages |
///  congestion | corruptions | ms/trial" -- the standard sweep table.
[[nodiscard]] util::Table summaryTable(const std::vector<GroupSummary>& groups);

/// One CSV row per trial (header included): the raw sweep record.
void writeTrialsCsv(std::ostream& os, const std::vector<TrialResult>& results);

/// JSON object {"bench": ..., "groups": [...]} feeding the BENCH_*.json
/// perf trajectory.
void writeSummariesJson(std::ostream& os, const std::string& bench,
                        const std::vector<GroupSummary>& groups);

}  // namespace mobile::exp
