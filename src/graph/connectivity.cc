#include "graph/connectivity.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "util/rng.h"

namespace mobile::graph {

namespace {

/// Residual state for unit-capacity flow over the arc space: arc a usable
/// iff used[a] == 0 and used[reverse(a)] == 0, or cancelling a reverse use.
struct UnitFlow {
  const Graph& g;
  std::vector<std::int8_t> flow;  // per edge: -1, 0, +1 net flow u->v

  explicit UnitFlow(const Graph& graph)
      : g(graph), flow(static_cast<std::size_t>(graph.edgeCount()), 0) {}

  /// Residual capacity of traveling from `from` across `e`.
  [[nodiscard]] bool residual(NodeId from, EdgeId e) const {
    const Edge& ed = g.edge(e);
    const std::int8_t f = flow[static_cast<std::size_t>(e)];
    if (from == ed.u) return f <= 0;  // capacity 1 each direction, net flow
    return f >= 0;
  }

  void push(NodeId from, EdgeId e) {
    const Edge& ed = g.edge(e);
    flow[static_cast<std::size_t>(e)] =
        static_cast<std::int8_t>(flow[static_cast<std::size_t>(e)] +
                                 ((from == ed.u) ? 1 : -1));
    assert(flow[static_cast<std::size_t>(e)] >= -1 &&
           flow[static_cast<std::size_t>(e)] <= 1);
  }

  /// One BFS augmentation s->t; returns false when no augmenting path.
  bool augment(NodeId s, NodeId t) {
    std::vector<EdgeId> via(static_cast<std::size_t>(g.nodeCount()), -1);
    std::vector<NodeId> from(static_cast<std::size_t>(g.nodeCount()), -1);
    std::queue<NodeId> q;
    q.push(s);
    from[static_cast<std::size_t>(s)] = s;
    while (!q.empty() && from[static_cast<std::size_t>(t)] < 0) {
      const NodeId v = q.front();
      q.pop();
      for (const auto& nb : g.neighbors(v)) {
        if (from[static_cast<std::size_t>(nb.node)] >= 0) continue;
        if (!residual(v, nb.edge)) continue;
        from[static_cast<std::size_t>(nb.node)] = v;
        via[static_cast<std::size_t>(nb.node)] = nb.edge;
        q.push(nb.node);
      }
    }
    if (from[static_cast<std::size_t>(t)] < 0) return false;
    for (NodeId v = t; v != s;) {
      const NodeId p = from[static_cast<std::size_t>(v)];
      push(p, via[static_cast<std::size_t>(v)]);
      v = p;
    }
    return true;
  }
};

}  // namespace

int edgeDisjointPathCount(const Graph& g, NodeId s, NodeId t, int cap) {
  UnitFlow f(g);
  int count = 0;
  while ((cap < 0 || count < cap) && f.augment(s, t)) ++count;
  return count;
}

std::vector<std::vector<NodeId>> edgeDisjointPaths(const Graph& g, NodeId s,
                                                   NodeId t, int k) {
  UnitFlow f(g);
  int count = 0;
  while (count < k && f.augment(s, t)) ++count;
  // Decompose the flow into paths: walk from s along positive-flow arcs,
  // consuming them.
  std::vector<std::vector<NodeId>> paths;
  for (int p = 0; p < count; ++p) {
    std::vector<NodeId> path{s};
    NodeId v = s;
    std::size_t guard = 0;
    (void)guard;  // incremented only inside assert; unused under NDEBUG
    while (v != t) {
      assert(++guard < static_cast<std::size_t>(g.edgeCount()) + 2);
      bool advanced = false;
      for (const auto& nb : g.neighbors(v)) {
        const Edge& ed = g.edge(nb.edge);
        auto& fe = f.flow[static_cast<std::size_t>(nb.edge)];
        const bool forward = (v == ed.u && fe == 1) || (v == ed.v && fe == -1);
        if (forward) {
          fe = 0;
          v = nb.node;
          path.push_back(v);
          advanced = true;
          break;
        }
      }
      if (!advanced) break;  // flow cycles were cancelled; shouldn't happen
    }
    if (!path.empty() && path.back() == t) paths.push_back(std::move(path));
  }
  return paths;
}

int edgeConnectivity(const Graph& g) {
  if (g.nodeCount() <= 1) return 0;
  if (!g.isConnected()) return 0;
  int lambda = static_cast<int>(g.minDegree());
  for (NodeId t = 1; t < g.nodeCount(); ++t)
    lambda = std::min(lambda, edgeDisjointPathCount(g, 0, t, lambda));
  return lambda;
}

bool probeKDtpConnected(const Graph& g, int k, int dtp) {
  // Certificate: for each pair (we sample node 0 against all others plus a
  // few random pairs -- the compiler applications key off per-neighbor
  // connectivity), greedily extract shortest paths in the residual graph;
  // all k must have length <= dtp.
  for (NodeId t = 1; t < g.nodeCount(); ++t) {
    auto paths = edgeDisjointPaths(g, 0, t, k);
    if (static_cast<int>(paths.size()) < k) return false;
    for (const auto& p : paths)
      if (static_cast<int>(p.size()) - 1 > dtp) return false;
  }
  return true;
}

double spectralConductanceLowerBound(const Graph& g, int iterations) {
  const std::size_t n = static_cast<std::size_t>(g.nodeCount());
  if (n < 2) return 0.0;
  // Lazy random walk W = 1/2 (I + D^{-1} A); second eigenvalue via power
  // iteration on the component orthogonal to the stationary distribution.
  std::vector<double> deg(n);
  double volume = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    deg[v] = static_cast<double>(g.degree(static_cast<NodeId>(v)));
    volume += deg[v];
  }
  util::Rng rng(0x5eedc0ffee);
  std::vector<double> x(n);
  for (auto& xi : x) xi = rng.uniform() - 0.5;
  std::vector<double> next(n);
  double lambda2 = 0.0;
  for (int it = 0; it < iterations; ++it) {
    // Project out the stationary component (pi_v ~ deg_v / vol under the
    // deg-weighted inner product).
    double dot = 0.0;
    for (std::size_t v = 0; v < n; ++v) dot += x[v] * deg[v];
    for (std::size_t v = 0; v < n; ++v) x[v] -= dot / volume;
    // One lazy-walk step.
    for (std::size_t v = 0; v < n; ++v) {
      double acc = 0.0;
      for (const auto& nb : g.neighbors(static_cast<NodeId>(v)))
        acc += x[static_cast<std::size_t>(nb.node)] /
               deg[static_cast<std::size_t>(nb.node)];
      // W acts on the left for row vectors; using the symmetrized action via
      // y_v = 1/2 x_v + 1/2 sum_{u ~ v} x_u / deg_u  (row-stochastic walk
      // applied to measures).
      next[v] = 0.5 * x[v] + 0.5 * acc;
    }
    double norm = 0.0;
    for (std::size_t v = 0; v < n; ++v) norm += next[v] * next[v];
    norm = std::sqrt(norm);
    if (norm < 1e-300) return 0.5;  // converged to zero: gap is huge
    lambda2 = norm /
              std::max(1e-300, std::sqrt([&] {
                double s = 0.0;
                for (const double xi : x) s += xi * xi;
                return s;
              }()));
    for (std::size_t v = 0; v < n; ++v) x[v] = next[v] / norm;
  }
  const double gap = std::max(0.0, 1.0 - lambda2);
  return gap / 2.0;  // Cheeger: phi >= gap/2 for the lazy walk
}

double exactConductanceSmall(const Graph& g) {
  const int n = g.nodeCount();
  assert(n <= 20 && "exponential cut enumeration");
  const std::uint32_t full = (1u << n) - 1;
  double best = 1.0;
  for (std::uint32_t s = 1; s < full; ++s) {
    double cut = 0.0, volS = 0.0, volC = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      const bool inS = (s >> v) & 1;
      (inS ? volS : volC) += static_cast<double>(g.degree(v));
      for (const auto& nb : g.neighbors(v)) {
        if (nb.node < v) continue;
        const bool otherIn = (s >> nb.node) & 1;
        if (inS != otherIn) cut += 1.0;
      }
    }
    const double denom = std::min(volS, volC);
    if (denom > 0.0) best = std::min(best, cut / denom);
  }
  return best;
}

}  // namespace mobile::graph
