// Tree packings (Definition 6 / Definition 7 of the paper).
//
// A (k, DTP, eta) tree packing is a collection of k spanning trees of
// diameter <= DTP where every edge appears in at most eta trees.  A *weak*
// packing only requires 0.9k of the subgraphs to be spanning trees rooted at
// a common root.  The byzantine compiler (Theorem 3.5) consumes weak
// packings; they are produced three ways:
//   * star packing on cliques (Theorem 1.6): k = n, DTP = 2, eta = 2;
//   * random-coloring BFS packing on expanders, computed distributedly and
//     adversarially (Lemma 3.10, in compile/expander_packing.h);
//   * greedy multiplicative-weights packing (Appendix C, Theorem C.2) for
//     general (k, DTP)-connected graphs, computed in trusted preprocessing.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace mobile::util {
class ThreadPool;
}

namespace mobile::graph {

struct TreePacking {
  std::vector<RootedTree> trees;
  NodeId commonRoot = -1;

  [[nodiscard]] std::size_t size() const { return trees.size(); }
};

struct PackingStats {
  std::size_t treeCount = 0;
  std::size_t spanningCount = 0;   // trees that span all nodes
  int maxDepth = 0;                // over spanning trees
  std::size_t maxLoad = 0;         // eta: max trees sharing one edge
  bool weakValid = false;          // >= 0.9k spanning, common root
};

[[nodiscard]] PackingStats analyzePacking(const TreePacking& p, const Graph& g);

/// Star packing of the clique: tree i is the star centered at node i, with
/// tree 0 additionally rooted so all trees share root 0.  In the paper's
/// terms each star has diameter 2 and the packing load is exactly 2.
/// We root every star at its center; Definition 7's common-root requirement
/// is met by re-rooting: star i rooted at node 0 has depth 2 paths
/// 0 -> center -> others (except star 0, depth 1).
[[nodiscard]] TreePacking cliqueStarPacking(const Graph& g);

/// Appendix C: greedy multiplicative-weights packing of k depth-capped
/// spanning trees rooted at `root`.  Each iteration adds an (approximately)
/// min-cost depth-bounded spanning tree under the exponential load weights
/// w(e) = a^{(h_e+1)/eta} - a^{h_e/eta}.  Depth-capped trees are built by a
/// depth-capped Prim growth (our stand-in for Lemma C.1's shallow-tree
/// oracle; DESIGN.md records this substitution).  The Prim growth itself is
/// sequential by definition -- it IS the determinism oracle -- while the
/// per-iteration weight refresh and edge-load tally fan out over `pool`
/// (sharded counters, fixed reduction order), so the result is bit-identical
/// at every thread count, `pool == nullptr` included.
[[nodiscard]] TreePacking greedyLowDepthPacking(const Graph& g, int k,
                                                NodeId root, int depthCap,
                                                util::ThreadPool* pool =
                                                    nullptr);

/// Karger-style baseline: uniformly color edges with k colors; tree i is a
/// BFS tree of color class i if that class is spanning+connected, otherwise
/// an arbitrary (non-spanning) leftover subtree.  Load is exactly 1 but many
/// classes fail to span unless the graph is very dense.
[[nodiscard]] TreePacking randomPartitionPacking(const Graph& g, int k,
                                                 NodeId root, util::Rng& rng);

}  // namespace mobile::graph
