#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace mobile::graph {

Graph clique(NodeId n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.addEdge(u, v);
  g.finalize();
  return g;
}

Graph cycle(NodeId n) {
  assert(n >= 3);
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) g.addEdge(v, (v + 1) % n);
  g.finalize();
  return g;
}

Graph hypercube(int dim) {
  const NodeId n = static_cast<NodeId>(1) << dim;
  Graph g(n);
  for (NodeId v = 0; v < n; ++v)
    for (int b = 0; b < dim; ++b) {
      const NodeId u = v ^ (static_cast<NodeId>(1) << b);
      if (v < u) g.addEdge(v, u);
    }
  g.finalize();
  return g;
}

Graph torus(NodeId rows, NodeId cols) {
  // rows, cols >= 3 keeps every wrap-around neighbor distinct, so the two
  // adds per cell can never duplicate -- no mid-build hasEdge probes (each
  // would force a CSR rebuild).
  assert(rows >= 3 && cols >= 3);
  Graph g(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r)
    for (NodeId c = 0; c < cols; ++c) {
      const NodeId v = id(r, c);
      g.addEdge(v, id(r, (c + 1) % cols));
      g.addEdge(v, id((r + 1) % rows, c));
    }
  g.finalize();
  return g;
}

Graph randomRegular(NodeId n, int d, util::Rng& rng) {
  assert(d >= 2 && d % 2 == 0 && "even degree required");
  assert(n > d);
  // Start from the deterministic d-regular circulant and randomize by
  // degree-preserving double-edge swaps (mixes toward the uniform model and
  // never gets stuck, unlike rejection sampling which is hopeless for dense
  // d).  Keep the result simple; redo the pass if connectivity breaks.
  for (int attempt = 0; attempt < 50; ++attempt) {
    std::set<std::pair<NodeId, NodeId>> edges;
    for (NodeId v = 0; v < n; ++v)
      for (int s = 1; s <= d / 2; ++s) {
        NodeId a = v, b = static_cast<NodeId>((v + s) % n);
        if (a > b) std::swap(a, b);
        edges.insert({a, b});
      }
    std::vector<std::pair<NodeId, NodeId>> list(edges.begin(), edges.end());
    const std::size_t swaps = list.size() * 20;
    for (std::size_t i = 0; i < swaps; ++i) {
      const std::size_t x = static_cast<std::size_t>(rng.below(list.size()));
      const std::size_t y = static_cast<std::size_t>(rng.below(list.size()));
      if (x == y) continue;
      auto [a, b] = list[x];
      auto [c, e] = list[y];
      // Swap to (a,c),(b,e); maintain simplicity.
      if (rng.chance(0.5)) std::swap(c, e);
      NodeId p1 = a, q1 = c, p2 = b, q2 = e;
      if (p1 > q1) std::swap(p1, q1);
      if (p2 > q2) std::swap(p2, q2);
      if (p1 == q1 || p2 == q2) continue;
      if (edges.count({p1, q1}) || edges.count({p2, q2})) continue;
      edges.erase({std::min(a, b), std::max(a, b)});
      edges.erase({std::min(c, e), std::max(c, e)});
      edges.insert({p1, q1});
      edges.insert({p2, q2});
      list[x] = {p1, q1};
      list[y] = {p2, q2};
    }
    Graph g(n);
    for (const auto& [a, b] : edges) g.addEdge(a, b);
    if (g.isConnected()) return g;  // isConnected finalized it
  }
  throw std::runtime_error("randomRegular: failed to build connected graph");
}

Graph erdosRenyiConnected(NodeId n, double p, util::Rng& rng) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    Graph g(n);
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v)
        if (rng.chance(p)) g.addEdge(u, v);
    if (g.isConnected()) return g;
  }
  throw std::runtime_error("erdosRenyiConnected: raise p");
}

Graph cycleWithChords(NodeId n, int chords, util::Rng& rng) {
  Graph g = cycle(n);
  int added = 0;
  int guard = 0;
  while (added < chords && guard++ < 100 * chords) {
    const NodeId u =
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    const NodeId v =
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v || g.hasEdge(u, v)) continue;
    g.addEdge(u, v);
    ++added;
  }
  g.finalize();
  return g;
}

Graph dumbbell(NodeId n, int bridges) {
  assert(n >= 4 && n % 2 == 0);
  const NodeId half = n / 2;
  assert(bridges <= half);
  Graph g(n);
  for (NodeId u = 0; u < half; ++u)
    for (NodeId v = u + 1; v < half; ++v) g.addEdge(u, v);
  for (NodeId u = half; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.addEdge(u, v);
  for (int b = 0; b < bridges; ++b)
    g.addEdge(static_cast<NodeId>(b), static_cast<NodeId>(half + b));
  g.finalize();
  return g;
}

Graph circulant(NodeId n, int span) {
  // 2 * span < n means the +s and -s strides never collide, so every add
  // is fresh -- no mid-build hasEdge probes (each would force a rebuild).
  assert(span >= 1 && 2 * span < n);
  Graph g(n);
  for (NodeId v = 0; v < n; ++v)
    for (int s = 1; s <= span; ++s)
      g.addEdge(v, static_cast<NodeId>((v + s) % n));
  g.finalize();
  return g;
}

}  // namespace mobile::graph
