// Connectivity machinery: unit-capacity max-flow (edge-disjoint path
// extraction), global edge connectivity, (k, D_TP)-connectivity probing
// (Definition of Chuzhoy-Parter-Tan used in Section 3.1), and a spectral
// conductance estimate for the expander experiments (Theorem 1.7).
#pragma once

#include <vector>

#include "graph/graph.h"

namespace mobile::graph {

/// Maximum number of edge-disjoint s-t paths (unit-capacity max-flow,
/// BFS augmentation), optionally capped at `cap` for early exit.
[[nodiscard]] int edgeDisjointPathCount(const Graph& g, NodeId s, NodeId t,
                                        int cap = -1);

/// Extracts up to `k` edge-disjoint s-t paths (each a node sequence
/// s..t).  Returns fewer if connectivity is lower.
[[nodiscard]] std::vector<std::vector<NodeId>> edgeDisjointPaths(
    const Graph& g, NodeId s, NodeId t, int k);

/// Global edge connectivity lambda(G) = min over t != 0 of maxflow(0, t).
[[nodiscard]] int edgeConnectivity(const Graph& g);

/// True if every node pair is joined by >= k edge-disjoint paths each of
/// length <= dtp -- the (k, D_TP)-connectivity of Section 3.1.  Exact check
/// is NP-hard in general; this uses the standard sufficient certificate of
/// iteratively extracting shortest edge-disjoint paths, so `true` is a
/// certificate while `false` may be conservative.  Good enough to *select*
/// experiment instances.
[[nodiscard]] bool probeKDtpConnected(const Graph& g, int k, int dtp);

/// Conductance lower-bound estimate via the spectral gap of the lazy random
/// walk (power iteration): phi >= gap / 2 by Cheeger.  Returns the Cheeger
/// lower bound.
[[nodiscard]] double spectralConductanceLowerBound(const Graph& g,
                                                   int iterations = 400);

/// Exact conductance by cut enumeration -- exponential, only for n <= 20
/// (used in tests to validate the spectral estimate).
[[nodiscard]] double exactConductanceSmall(const Graph& g);

}  // namespace mobile::graph
