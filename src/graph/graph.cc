#include "graph/graph.h"

#include <algorithm>
#include <queue>
#include <sstream>

namespace mobile::graph {

EdgeId Graph::addEdge(NodeId u, NodeId v) {
  assert(u != v && "self loops not supported");
  assert(u >= 0 && v >= 0 && u < nodeCount() && v < nodeCount());
  assert(!hasEdge(u, v) && "parallel edges not supported");
  if (u > v) std::swap(u, v);
  const EdgeId id = edgeCount();
  edges_.push_back({u, v});
  adjacency_[static_cast<std::size_t>(u)].push_back({v, id});
  adjacency_[static_cast<std::size_t>(v)].push_back({u, id});
  edgeIndex_.emplace(pairKey(u, v), id);
  return id;
}

bool Graph::hasEdge(NodeId u, NodeId v) const {
  return edgeBetween(u, v) >= 0;
}

EdgeId Graph::edgeBetween(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= nodeCount() || v >= nodeCount()) return -1;
  if (u > v) std::swap(u, v);
  const auto it = edgeIndex_.find(pairKey(u, v));
  return it != edgeIndex_.end() ? it->second : -1;
}

std::size_t Graph::minDegree() const {
  std::size_t d = static_cast<std::size_t>(-1);
  for (NodeId v = 0; v < nodeCount(); ++v) d = std::min(d, degree(v));
  return nodeCount() == 0 ? 0 : d;
}

ArcId Graph::arcFromTo(NodeId from, NodeId to) const {
  const EdgeId e = edgeBetween(from, to);
  assert(e >= 0);
  const Edge& ed = edge(e);
  return (ed.u == from) ? 2 * e : 2 * e + 1;
}

bool Graph::isConnected() const {
  if (nodeCount() == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(nodeCount()), 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  NodeId visited = 1;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& nb : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(nb.node)]) {
        seen[static_cast<std::size_t>(nb.node)] = 1;
        ++visited;
        q.push(nb.node);
      }
    }
  }
  return visited == nodeCount();
}

std::uint64_t structuralFingerprint(const Graph& g) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto fold = [&h](std::uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
    h ^= h >> 31;
  };
  fold(static_cast<std::uint64_t>(g.nodeCount()));
  for (EdgeId e = 0; e < g.edgeCount(); ++e) {
    const Edge& ed = g.edge(e);
    fold((static_cast<std::uint64_t>(static_cast<std::uint32_t>(ed.u)) << 32) |
         static_cast<std::uint32_t>(ed.v));
  }
  return h;
}

std::string Graph::describe() const {
  std::ostringstream os;
  os << "Graph(n=" << nodeCount() << ", m=" << edgeCount() << ")";
  return os.str();
}

int RootedTree::height() const {
  int h = 0;
  for (const int d : depth) h = std::max(h, d);
  return h;
}

bool RootedTree::spanning(NodeId n) const {
  if (static_cast<NodeId>(depth.size()) != n) return false;
  for (const int d : depth)
    if (d < 0) return false;
  return true;
}

std::vector<EdgeId> RootedTree::edges() const {
  std::vector<EdgeId> out;
  for (std::size_t v = 0; v < parentEdge.size(); ++v)
    if (parentEdge[v] >= 0) out.push_back(parentEdge[v]);
  return out;
}

RootedTree RootedTree::fromParents(NodeId root,
                                   const std::vector<NodeId>& parent,
                                   const Graph& g) {
  RootedTree t;
  t.root = root;
  t.parent = parent;
  const std::size_t n = parent.size();
  t.parentEdge.assign(n, -1);
  t.children.assign(n, {});
  t.depth.assign(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    if (parent[v] >= 0) {
      t.parentEdge[v] = g.edgeBetween(static_cast<NodeId>(v), parent[v]);
      assert(t.parentEdge[v] >= 0 && "parent must be a graph neighbor");
      t.children[static_cast<std::size_t>(parent[v])].push_back(
          static_cast<NodeId>(v));
    }
  }
  // Depths via BFS from the root over parent links (iterative to avoid
  // recursion limits on path-like trees).
  std::queue<NodeId> q;
  if (root >= 0) {
    t.depth[static_cast<std::size_t>(root)] = 0;
    q.push(root);
  }
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const NodeId c : t.children[static_cast<std::size_t>(v)]) {
      t.depth[static_cast<std::size_t>(c)] =
          t.depth[static_cast<std::size_t>(v)] + 1;
      q.push(c);
    }
  }
  return t;
}

}  // namespace mobile::graph
