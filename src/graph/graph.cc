#include "graph/graph.h"

#include <algorithm>
#include <queue>
#include <sstream>

namespace mobile::graph {

EdgeId Graph::addEdge(NodeId u, NodeId v) {
  assert(u != v && "self loops not supported");
  assert(u >= 0 && v >= 0 && u < nodeCount() && v < nodeCount());
  if (u > v) std::swap(u, v);
  const EdgeId id = edgeCount();
  edges_.push_back({u, v});
  dirty_ = true;
  return id;
}

void Graph::ensure() const {
  if (dirty_) rebuild();
}

void Graph::rebuild() const {
  const std::size_t n = static_cast<std::size_t>(n_);
  const std::size_t m = edges_.size();
  offsets_.assign(n + 1, 0);
  adj_.resize(2 * m);
  reverse_.resize(2 * m);
  sorted_.resize(2 * m);
  edgeArc_.resize(m);

  // Pass 1: out-degrees into offsets_[v + 1], then prefix-sum to rows.
  for (const Edge& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
    ++offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];

  // Pass 2: place arcs in edge-id order so each row lists neighbors in
  // edge-insertion order -- the exact order the legacy push_back layout
  // exposed to algorithms.  cursor[v] walks v's row.
  std::vector<ArcId> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t e = 0; e < m; ++e) {
    const Edge& ed = edges_[e];
    const ArcId au = cursor[static_cast<std::size_t>(ed.u)]++;
    const ArcId av = cursor[static_cast<std::size_t>(ed.v)]++;
    adj_[static_cast<std::size_t>(au)] = {ed.v, static_cast<EdgeId>(e)};
    adj_[static_cast<std::size_t>(av)] = {ed.u, static_cast<EdgeId>(e)};
    reverse_[static_cast<std::size_t>(au)] = av;
    reverse_[static_cast<std::size_t>(av)] = au;
    edgeArc_[e] = au;
  }

  // Pass 3: per-row arc-id index sorted by neighbor id, for O(log deg)
  // edgeBetween / arcFromTo without disturbing the insertion-order rows.
  for (ArcId a = 0; a < static_cast<ArcId>(2 * m); ++a)
    sorted_[static_cast<std::size_t>(a)] = a;
  for (std::size_t v = 0; v < n; ++v) {
    const auto lo = static_cast<std::size_t>(offsets_[v]);
    const auto hi = static_cast<std::size_t>(offsets_[v + 1]);
    std::sort(sorted_.begin() + static_cast<std::ptrdiff_t>(lo),
              sorted_.begin() + static_cast<std::ptrdiff_t>(hi),
              [this](ArcId a, ArcId b) {
                return adj_[static_cast<std::size_t>(a)].node <
                       adj_[static_cast<std::size_t>(b)].node;
              });
#ifndef NDEBUG
    for (std::size_t i = lo + 1; i < hi; ++i)
      assert(adj_[static_cast<std::size_t>(sorted_[i - 1])].node !=
                 adj_[static_cast<std::size_t>(sorted_[i])].node &&
             "parallel edges not supported");
#endif
  }
  dirty_ = false;
}

ArcId Graph::findArc(NodeId from, NodeId to) const {
  ensure();
  const std::size_t lo = rowLo(from);
  const std::size_t hi = rowHi(from);
  const auto first = sorted_.begin() + static_cast<std::ptrdiff_t>(lo);
  const auto last = sorted_.begin() + static_cast<std::ptrdiff_t>(hi);
  const auto it =
      std::lower_bound(first, last, to, [this](ArcId a, NodeId node) {
        return adj_[static_cast<std::size_t>(a)].node < node;
      });
  if (it == last || adj_[static_cast<std::size_t>(*it)].node != to) return -1;
  return *it;
}

EdgeId Graph::edgeBetween(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= nodeCount() || v >= nodeCount() || u == v)
    return -1;
  ensure();
  // Search the sparser endpoint's row.
  const NodeId from = degree(u) <= degree(v) ? u : v;
  const ArcId a = findArc(from, from == u ? v : u);
  return a < 0 ? -1 : adj_[static_cast<std::size_t>(a)].edge;
}

ArcId Graph::arcFromTo(NodeId from, NodeId to) const {
  const ArcId a = findArc(from, to);
  assert(a >= 0 && "arcFromTo requires an existing edge");
  return a;
}

NodeId Graph::arcSource(ArcId a) const {
  ensure();
  // The row whose [offsets_[v], offsets_[v+1]) range contains `a`.
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), a);
  return static_cast<NodeId>(it - offsets_.begin() - 1);
}

std::size_t Graph::minDegree() const {
  std::size_t d = static_cast<std::size_t>(-1);
  for (NodeId v = 0; v < nodeCount(); ++v) d = std::min(d, degree(v));
  return nodeCount() == 0 ? 0 : d;
}

bool Graph::isConnected() const {
  if (nodeCount() == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(nodeCount()), 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  NodeId visited = 1;
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& nb : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(nb.node)]) {
        seen[static_cast<std::size_t>(nb.node)] = 1;
        ++visited;
        q.push(nb.node);
      }
    }
  }
  return visited == nodeCount();
}

std::uint64_t structuralFingerprint(const Graph& g) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto fold = [&h](std::uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
    h ^= h >> 31;
  };
  fold(static_cast<std::uint64_t>(g.nodeCount()));
  for (EdgeId e = 0; e < g.edgeCount(); ++e) {
    const Edge& ed = g.edge(e);
    fold((static_cast<std::uint64_t>(static_cast<std::uint32_t>(ed.u)) << 32) |
         static_cast<std::uint32_t>(ed.v));
  }
  return h;
}

std::string Graph::describe() const {
  std::ostringstream os;
  os << "Graph(n=" << nodeCount() << ", m=" << edgeCount() << ")";
  return os.str();
}

int RootedTree::height() const {
  int h = 0;
  for (const int d : depth) h = std::max(h, d);
  return h;
}

bool RootedTree::spanning(NodeId n) const {
  if (static_cast<NodeId>(depth.size()) != n) return false;
  for (const int d : depth)
    if (d < 0) return false;
  return true;
}

std::vector<EdgeId> RootedTree::edges() const {
  std::vector<EdgeId> out;
  for (std::size_t v = 0; v < parentEdge.size(); ++v)
    if (parentEdge[v] >= 0) out.push_back(parentEdge[v]);
  return out;
}

RootedTree RootedTree::fromParents(NodeId root,
                                   const std::vector<NodeId>& parent,
                                   const Graph& g) {
  RootedTree t;
  t.root = root;
  t.parent = parent;
  const std::size_t n = parent.size();
  t.parentEdge.assign(n, -1);
  t.children.assign(n, {});
  t.depth.assign(n, -1);
  for (std::size_t v = 0; v < n; ++v) {
    if (parent[v] >= 0) {
      t.parentEdge[v] = g.edgeBetween(static_cast<NodeId>(v), parent[v]);
      assert(t.parentEdge[v] >= 0 && "parent must be a graph neighbor");
      t.children[static_cast<std::size_t>(parent[v])].push_back(
          static_cast<NodeId>(v));
    }
  }
  // Depths via BFS from the root over parent links (iterative to avoid
  // recursion limits on path-like trees).
  std::queue<NodeId> q;
  if (root >= 0) {
    t.depth[static_cast<std::size_t>(root)] = 0;
    q.push(root);
  }
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const NodeId c : t.children[static_cast<std::size_t>(v)]) {
      t.depth[static_cast<std::size_t>(c)] =
          t.depth[static_cast<std::size_t>(v)] + 1;
      q.push(c);
    }
  }
  return t;
}

}  // namespace mobile::graph
