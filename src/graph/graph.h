// Undirected simple graph with stable edge and arc indexing.
//
// The simulator addresses communication by *arcs* (directed edge sides):
// edge e = (u, v) with u < v contributes arc 2e (u -> v) and arc 2e+1
// (v -> u).  Adversaries corrupt *edges* (both arcs), matching the paper's
// model where controlling an edge exposes/alters both directions.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mobile::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using ArcId = std::int32_t;

struct Edge {
  NodeId u = -1;  // u < v invariant
  NodeId v = -1;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(NodeId n) : adjacency_(static_cast<std::size_t>(n)) {}

  [[nodiscard]] NodeId nodeCount() const {
    return static_cast<NodeId>(adjacency_.size());
  }
  [[nodiscard]] EdgeId edgeCount() const {
    return static_cast<EdgeId>(edges_.size());
  }
  [[nodiscard]] ArcId arcCount() const { return 2 * edgeCount(); }

  /// Adds edge (u, v); returns its id.  Parallel edges and loops rejected.
  EdgeId addEdge(NodeId u, NodeId v);

  [[nodiscard]] bool hasEdge(NodeId u, NodeId v) const;
  [[nodiscard]] EdgeId edgeBetween(NodeId u, NodeId v) const;  // -1 if none

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }

  struct Neighbor {
    NodeId node;
    EdgeId edge;
  };
  [[nodiscard]] const std::vector<Neighbor>& neighbors(NodeId v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::size_t degree(NodeId v) const {
    return adjacency_[static_cast<std::size_t>(v)].size();
  }
  [[nodiscard]] std::size_t minDegree() const;

  // --- arc helpers -------------------------------------------------------
  [[nodiscard]] ArcId arcFromTo(NodeId from, NodeId to) const;
  [[nodiscard]] NodeId arcSource(ArcId a) const {
    const Edge& e = edge(a / 2);
    return (a % 2 == 0) ? e.u : e.v;
  }
  [[nodiscard]] NodeId arcTarget(ArcId a) const {
    const Edge& e = edge(a / 2);
    return (a % 2 == 0) ? e.v : e.u;
  }
  [[nodiscard]] static ArcId reverseArc(ArcId a) { return a ^ 1; }
  [[nodiscard]] static EdgeId arcEdge(ArcId a) { return a / 2; }

  [[nodiscard]] bool isConnected() const;

  [[nodiscard]] std::string describe() const;

 private:
  /// Key for the O(1) endpoint->edge index (node ids are 32-bit).
  [[nodiscard]] static std::uint64_t pairKey(NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }

  std::vector<Edge> edges_;
  std::vector<std::vector<Neighbor>> adjacency_;
  /// (u, v) -> edge id for u < v, maintained by addEdge.  Keeps
  /// edgeBetween/arcFromTo O(1): the round engine resolves an arc per
  /// message sent AND received, so an O(deg) adjacency scan here turns
  /// every dense-graph round into O(sum deg^2).
  std::unordered_map<std::uint64_t, EdgeId> edgeIndex_;
};

/// Order-stable digest of a graph's structure (node count + edge list in
/// id order).  Two graphs built by the same generator with the same
/// parameters share a fingerprint; exp::PrecomputeCache keys trusted
/// preprocessing on it so independent trials over value-copied graphs
/// share one packing computation.
[[nodiscard]] std::uint64_t structuralFingerprint(const Graph& g);

/// A spanning (or partial) tree over a graph, rooted, with distributed
/// knowledge exactly as the paper assumes: each node knows its parent and
/// children per tree (Definition 6 context).
struct RootedTree {
  NodeId root = -1;
  std::vector<NodeId> parent;           // parent[v]; root's parent = -1
  std::vector<EdgeId> parentEdge;       // edge id towards parent; -1 at root
  std::vector<std::vector<NodeId>> children;
  std::vector<int> depth;               // depth[root] = 0; -1 if not in tree

  [[nodiscard]] bool contains(NodeId v) const {
    return v >= 0 && static_cast<std::size_t>(v) < depth.size() &&
           depth[static_cast<std::size_t>(v)] >= 0;
  }
  [[nodiscard]] int height() const;
  [[nodiscard]] bool spanning(NodeId n) const;
  [[nodiscard]] std::vector<EdgeId> edges() const;

  /// Builds the rooted tree from a parent array (parent[root] == -1).
  static RootedTree fromParents(NodeId root, const std::vector<NodeId>& parent,
                                const Graph& g);
};

}  // namespace mobile::graph
