// Undirected simple graph in compressed-sparse-row (CSR) layout with
// arc ids that ARE the CSR offsets.
//
// The simulator addresses communication by *arcs* (directed edge sides).
// Arc `a` is a position in the flat adjacency array: node v's out-arcs are
// exactly the contiguous range [firstOutArc(v), firstOutArc(v) + degree(v)),
// in edge-insertion order -- identical to the per-node push_back order of
// the legacy adjacency-vector layout, so algorithm-visible neighbor
// iteration (and therefore every output fingerprint) is unchanged.  The
// send/receive hot path resolves arcs by offset arithmetic; by-id lookups
// (edgeBetween / arcFromTo) binary-search a per-node neighbor-sorted
// position index -- flat, cache-resident, no hash table anywhere.
// Adversaries still corrupt *edges* (both arcs), matching the paper's
// model; arcOfEdge(e, dir) maps an edge to its two CSR arcs (dir 0 is
// u -> v with u < v, the legacy arc 2e).
//
// Construction is two-stage: addEdge() appends to the edge list only (8
// bytes per edge, no per-node vectors, no hash map), and the CSR arrays are
// (re)built on first read after a mutation.  finalize() forces the build;
// call it before sharing one Graph instance across threads -- concurrent
// reads of a finalized graph are safe, a concurrent first-read rebuild is
// not.  Generators return finalized graphs.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace mobile::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using ArcId = std::int32_t;

struct Edge {
  NodeId u = -1;  // u < v invariant
  NodeId v = -1;
};

class Graph {
 public:
  struct Neighbor {
    NodeId node;
    EdgeId edge;
  };

  /// Contiguous view of one node's adjacency (CSR row), in edge-insertion
  /// order.  `firstArc() + i` is the out-arc of the i-th neighbor.
  class NeighborRange {
   public:
    NeighborRange(const Neighbor* data, std::size_t size, ArcId firstArc)
        : data_(data), size_(size), firstArc_(firstArc) {}
    [[nodiscard]] const Neighbor* begin() const { return data_; }
    [[nodiscard]] const Neighbor* end() const { return data_ + size_; }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }
    [[nodiscard]] const Neighbor& operator[](std::size_t i) const {
      assert(i < size_);
      return data_[i];
    }
    /// Out-arc id of the first neighbor (arc of neighbor i = firstArc()+i).
    [[nodiscard]] ArcId firstArc() const { return firstArc_; }

   private:
    const Neighbor* data_;
    std::size_t size_;
    ArcId firstArc_;
  };

  Graph() = default;
  explicit Graph(NodeId n) : n_(n) {}

  [[nodiscard]] NodeId nodeCount() const { return n_; }
  [[nodiscard]] EdgeId edgeCount() const {
    return static_cast<EdgeId>(edges_.size());
  }
  [[nodiscard]] ArcId arcCount() const { return 2 * edgeCount(); }

  /// Adds edge (u, v); returns its id.  O(1) append: only the edge list
  /// grows here; the CSR arrays rebuild lazily on the next read.  Self
  /// loops are rejected immediately; parallel edges are rejected (debug
  /// assert) during the CSR rebuild, where detection is free.
  EdgeId addEdge(NodeId u, NodeId v);

  /// Builds the CSR arrays now (idempotent).  Required before sharing the
  /// graph across threads; a finalized graph is immutable until the next
  /// addEdge().
  void finalize() const { ensure(); }
  [[nodiscard]] bool finalized() const { return !dirty_; }

  [[nodiscard]] bool hasEdge(NodeId u, NodeId v) const {
    return edgeBetween(u, v) >= 0;
  }
  /// -1 if none.  Binary search on the smaller endpoint's sorted row:
  /// O(log min-degree), flat memory.
  [[nodiscard]] EdgeId edgeBetween(NodeId u, NodeId v) const;

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }

  [[nodiscard]] NeighborRange neighbors(NodeId v) const {
    ensure();
    const std::size_t lo = rowLo(v);
    return NeighborRange(adj_.data() + lo, rowHi(v) - lo,
                         static_cast<ArcId>(lo));
  }
  [[nodiscard]] std::size_t degree(NodeId v) const {
    ensure();
    return rowHi(v) - rowLo(v);
  }
  [[nodiscard]] std::size_t minDegree() const;

  // --- arc helpers (ids are CSR offsets) ---------------------------------
  /// First out-arc of v; its i-th neighbor's out-arc is firstOutArc(v)+i.
  [[nodiscard]] ArcId firstOutArc(NodeId v) const {
    ensure();
    return offsets_[static_cast<std::size_t>(v)];
  }
  /// Out-arc from -> to.  O(log degree(from)); asserts the edge exists.
  [[nodiscard]] ArcId arcFromTo(NodeId from, NodeId to) const;
  /// Source of arc `a`: the node whose CSR row contains offset `a`
  /// (O(log n) offset search; arcTarget/arcEdge/reverseArc are O(1)).
  [[nodiscard]] NodeId arcSource(ArcId a) const;
  [[nodiscard]] NodeId arcTarget(ArcId a) const {
    ensure();
    return adj_[static_cast<std::size_t>(a)].node;
  }
  [[nodiscard]] ArcId reverseArc(ArcId a) const {
    ensure();
    return reverse_[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] EdgeId arcEdge(ArcId a) const {
    ensure();
    return adj_[static_cast<std::size_t>(a)].edge;
  }
  /// The two arcs of edge e: dir 0 is u -> v with u < v (the legacy arc
  /// 2e), dir 1 the reverse (legacy 2e+1).
  [[nodiscard]] ArcId arcOfEdge(EdgeId e, int dir) const {
    ensure();
    const ArcId forward = edgeArc_[static_cast<std::size_t>(e)];
    return dir == 0 ? forward : reverse_[static_cast<std::size_t>(forward)];
  }

  [[nodiscard]] bool isConnected() const;

  [[nodiscard]] std::string describe() const;

 private:
  /// Rebuilds the CSR arrays from the edge list when dirty: counting sort
  /// into offsets_, one placement pass (insertion order preserved per row),
  /// then the per-row neighbor-sorted position index.  O(n + m log maxdeg).
  void ensure() const;
  void rebuild() const;

  [[nodiscard]] std::size_t rowLo(NodeId v) const {
    return static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
  }
  [[nodiscard]] std::size_t rowHi(NodeId v) const {
    return static_cast<std::size_t>(
        offsets_[static_cast<std::size_t>(v) + 1]);
  }
  /// Position (global arc id) of `to` in `from`'s sorted row, or -1.
  [[nodiscard]] ArcId findArc(NodeId from, NodeId to) const;

  NodeId n_ = 0;
  std::vector<Edge> edges_;

  // CSR arrays, valid iff !dirty_.  mutable: rebuilt lazily from const
  // accessors (see the thread-safety note in the header comment).
  mutable bool dirty_ = true;
  mutable std::vector<ArcId> offsets_;   // n+1 row boundaries
  mutable std::vector<Neighbor> adj_;    // arc id -> (target, edge)
  mutable std::vector<ArcId> reverse_;   // arc id -> opposite-direction arc
  mutable std::vector<ArcId> sorted_;    // rows of arc ids, neighbor-sorted
  mutable std::vector<ArcId> edgeArc_;   // edge id -> its u -> v arc (u < v)
};

/// Order-stable digest of a graph's structure (node count + edge list in
/// id order).  Two graphs built by the same generator with the same
/// parameters share a fingerprint; exp::PrecomputeCache keys trusted
/// preprocessing on it so independent trials over value-copied graphs
/// share one packing computation.  Layout-independent: the CSR engine
/// hashes exactly what the legacy adjacency-vector engine hashed.
[[nodiscard]] std::uint64_t structuralFingerprint(const Graph& g);

/// A spanning (or partial) tree over a graph, rooted, with distributed
/// knowledge exactly as the paper assumes: each node knows its parent and
/// children per tree (Definition 6 context).
struct RootedTree {
  NodeId root = -1;
  std::vector<NodeId> parent;           // parent[v]; root's parent = -1
  std::vector<EdgeId> parentEdge;       // edge id towards parent; -1 at root
  std::vector<std::vector<NodeId>> children;
  std::vector<int> depth;               // depth[root] = 0; -1 if not in tree

  [[nodiscard]] bool contains(NodeId v) const {
    return v >= 0 && static_cast<std::size_t>(v) < depth.size() &&
           depth[static_cast<std::size_t>(v)] >= 0;
  }
  [[nodiscard]] int height() const;
  [[nodiscard]] bool spanning(NodeId n) const;
  [[nodiscard]] std::vector<EdgeId> edges() const;

  /// Builds the rooted tree from a parent array (parent[root] == -1).
  static RootedTree fromParents(NodeId root, const std::vector<NodeId>& parent,
                                const Graph& g);
};

}  // namespace mobile::graph
