// The pre-CSR reference graph, preserved verbatim for differential testing.
//
// This is the seed engine's Graph: per-node adjacency vectors plus an
// unordered_map endpoint->edge index, with the fixed arc convention
// edge e = (u, v), u < v => arc 2e (u -> v) and arc 2e+1 (v -> u).
// tests/test_graph_csr.cc builds every random topology through BOTH this
// class and the CSR Graph and asserts adjacency order, lookups, degrees,
// and structural fingerprints agree exactly.  Nothing outside the tests
// should use it.
#pragma once

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mobile::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using ArcId = std::int32_t;

class LegacyGraph {
 public:
  struct Edge {
    NodeId u = -1;  // u < v invariant
    NodeId v = -1;
  };

  LegacyGraph() = default;
  explicit LegacyGraph(NodeId n) : adjacency_(static_cast<std::size_t>(n)) {}

  [[nodiscard]] NodeId nodeCount() const {
    return static_cast<NodeId>(adjacency_.size());
  }
  [[nodiscard]] EdgeId edgeCount() const {
    return static_cast<EdgeId>(edges_.size());
  }
  [[nodiscard]] ArcId arcCount() const { return 2 * edgeCount(); }

  /// Adds edge (u, v); returns its id.  Parallel edges and loops rejected.
  EdgeId addEdge(NodeId u, NodeId v);

  [[nodiscard]] bool hasEdge(NodeId u, NodeId v) const;
  [[nodiscard]] EdgeId edgeBetween(NodeId u, NodeId v) const;  // -1 if none

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }

  struct Neighbor {
    NodeId node;
    EdgeId edge;
  };
  [[nodiscard]] const std::vector<Neighbor>& neighbors(NodeId v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::size_t degree(NodeId v) const {
    return adjacency_[static_cast<std::size_t>(v)].size();
  }

  // --- arc helpers (fixed 2e / 2e+1 convention) --------------------------
  [[nodiscard]] ArcId arcFromTo(NodeId from, NodeId to) const;
  [[nodiscard]] NodeId arcSource(ArcId a) const {
    const Edge& e = edge(a / 2);
    return (a % 2 == 0) ? e.u : e.v;
  }
  [[nodiscard]] NodeId arcTarget(ArcId a) const {
    const Edge& e = edge(a / 2);
    return (a % 2 == 0) ? e.v : e.u;
  }
  [[nodiscard]] static ArcId reverseArc(ArcId a) { return a ^ 1; }
  [[nodiscard]] static EdgeId arcEdge(ArcId a) { return a / 2; }

 private:
  [[nodiscard]] static std::uint64_t pairKey(NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }

  std::vector<Edge> edges_;
  std::vector<std::vector<Neighbor>> adjacency_;
  std::unordered_map<std::uint64_t, EdgeId> edgeIndex_;
};

/// Same digest as structuralFingerprint(const Graph&), over the legacy
/// layout -- the differential harness asserts the two engines agree.
[[nodiscard]] std::uint64_t structuralFingerprint(const LegacyGraph& g);

}  // namespace mobile::graph
