// Streaming graph generators for the n=10^5..10^6 sweeps.
//
// An EdgeStream is a replayable edge emitter: `emit` pushes every edge of
// the topology into a sink, in a deterministic order fixed by the stream's
// parameters (and seed, where applicable).  Consumers that only need to
// *scan* edges (degree counting, fingerprinting, partitioning) run in O(1)
// auxiliary memory; materialize() builds a CSR Graph directly from the
// emission, so nothing ever holds an O(n^2) candidate structure -- the
// per-pair coin-flip loop of erdosRenyiConnected() is exactly what these
// replace at scale.  tests/test_stream_generators.cc pins the allocation
// bound and the identity with the materialized generators.
#pragma once

#include <cstdint>
#include <functional>

#include "graph/graph.h"

namespace mobile::graph {

/// Receives one edge (u != v, both in [0, nodes)); duplicates are a bug in
/// the emitting stream, not the sink's problem.
using EdgeSink = std::function<void(NodeId, NodeId)>;

/// A replayable deterministic edge emitter: every call to emit() produces
/// the same edges in the same order.
struct EdgeStream {
  NodeId nodes = 0;
  std::function<void(const EdgeSink&)> emit;
};

/// K_n, emitted in exactly generators.cc clique() order.
[[nodiscard]] EdgeStream cliqueStream(NodeId n);

/// rows x cols torus, emitted in exactly generators.cc torus() order.
[[nodiscard]] EdgeStream torusStream(NodeId rows, NodeId cols);

/// Random d-regular expander via the permutation-union model: the union of
/// d/2 uniformly random Hamiltonian cycles (d even, n > d >= 2).  A cycle
/// colliding with an already-emitted edge is redrawn whole, so the result
/// is simple and d-regular; cycle 0 alone spans every node, so it is
/// connected by construction -- no O(n m) connectivity re-checks.  Such
/// unions are expanders w.h.p. (the paper's Theorem 1.7/4.12 regime).
/// Auxiliary memory is O(m) for the dedup set plus O(n) for the cycle
/// being drawn; emission order is fixed by (n, d, seed).
[[nodiscard]] EdgeStream expanderStream(NodeId n, int d, std::uint64_t seed);

/// Alias semantics: the permutation-union model IS our streaming
/// random-regular sampler (the materialized randomRegular() mixes a
/// circulant by edge swaps instead, which needs the whole edge set
/// resident and repeated connectivity checks).
[[nodiscard]] EdgeStream randomRegularStream(NodeId n, int d,
                                             std::uint64_t seed);

/// Builds a finalized CSR Graph from one replay of the stream.
[[nodiscard]] Graph materialize(const EdgeStream& stream);

}  // namespace mobile::graph
