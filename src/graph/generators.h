// Graph generators for the experiment families of the paper:
// cliques (CONGESTED CLIQUE, Theorems 1.6/4.11), random regular expanders
// (Theorems 1.7/4.12), and assorted well-connected topologies for the
// general-graph compilers (Theorems 1.2-1.5).
#pragma once

#include "graph/graph.h"
#include "util/rng.h"

namespace mobile::graph {

/// Complete graph K_n.
[[nodiscard]] Graph clique(NodeId n);

/// Cycle C_n.
[[nodiscard]] Graph cycle(NodeId n);

/// d-dimensional hypercube (n = 2^dim nodes).
[[nodiscard]] Graph hypercube(int dim);

/// rows x cols torus grid (4-regular, diameter ~ (rows+cols)/2).
[[nodiscard]] Graph torus(NodeId rows, NodeId cols);

/// Random d-regular simple graph via the permutation-union model (union of
/// d/2 random Hamiltonian cycles for even d); retries until simple.  These
/// are expanders w.h.p. -- conductance is checked by the callers that need
/// it (see connectivity.h::spectralConductance).
[[nodiscard]] Graph randomRegular(NodeId n, int d, util::Rng& rng);

/// Erdos-Renyi G(n, p), resampled until connected (caller should pick p
/// comfortably above the connectivity threshold).
[[nodiscard]] Graph erdosRenyiConnected(NodeId n, double p, util::Rng& rng);

/// Cycle with h random chords added -- cheap family of 2-connected sparse
/// graphs with tunable diameter.
[[nodiscard]] Graph cycleWithChords(NodeId n, int chords, util::Rng& rng);

/// Two cliques of size n/2 joined by `bridges` disjoint edges; the classic
/// low-conductance counterexample used as a negative control for the
/// expander compilers.
[[nodiscard]] Graph dumbbell(NodeId n, int bridges);

/// K_{2f+2}-style highly connected small graph: circulant graph where node i
/// connects to i +/- 1..span (mod n); edge connectivity = 2*span.
[[nodiscard]] Graph circulant(NodeId n, int span);

}  // namespace mobile::graph
