#include "graph/stream.h"

#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace mobile::graph {

namespace {

std::uint64_t pairKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

}  // namespace

EdgeStream cliqueStream(NodeId n) {
  EdgeStream s;
  s.nodes = n;
  s.emit = [n](const EdgeSink& sink) {
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v) sink(u, v);
  };
  return s;
}

EdgeStream torusStream(NodeId rows, NodeId cols) {
  assert(rows >= 3 && cols >= 3);
  EdgeStream s;
  s.nodes = rows * cols;
  s.emit = [rows, cols](const EdgeSink& sink) {
    auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
    for (NodeId r = 0; r < rows; ++r)
      for (NodeId c = 0; c < cols; ++c) {
        const NodeId v = id(r, c);
        sink(v, id(r, (c + 1) % cols));
        sink(v, id((r + 1) % rows, c));
      }
  };
  return s;
}

EdgeStream expanderStream(NodeId n, int d, std::uint64_t seed) {
  assert(d >= 2 && d % 2 == 0 && "even degree required");
  assert(n > d);
  EdgeStream s;
  s.nodes = n;
  s.emit = [n, d, seed](const EdgeSink& sink) {
    util::Rng rng(seed);
    const auto un = static_cast<std::size_t>(n);
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(un * static_cast<std::size_t>(d) / 2);
    std::vector<NodeId> perm(un);
    for (int cyc = 0; cyc < d / 2; ++cyc) {
      for (std::size_t i = 0; i < un; ++i) perm[i] = static_cast<NodeId>(i);
      for (std::size_t i = un - 1; i > 0; --i) {
        const std::size_t j = static_cast<std::size_t>(rng.below(i + 1));
        std::swap(perm[i], perm[j]);
      }
      // A fresh cycle collides with earlier ones on ~2*cyc edges in
      // expectation REGARDLESS of n, so redrawing whole cycles until one
      // is clean stalls already at d = 6.  Repair locally instead: swap a
      // colliding position with a random one (O(1) edges disturbed) until
      // the scan comes back clean.
      bool clean = false;
      std::uint64_t budget = 20ull * un + 1000;
      while (!clean && budget > 0) {
        clean = true;
        for (std::size_t i = 0; i < un && budget > 0; ++i) {
          if (!seen.count(pairKey(perm[i], perm[(i + 1) % un]))) continue;
          clean = false;
          const std::size_t j = static_cast<std::size_t>(rng.below(un));
          std::swap(perm[i], perm[j]);
          --budget;
        }
      }
      if (!clean)
        throw std::runtime_error(
            "expanderStream: cycle kept colliding (n too small for d)");
      for (std::size_t i = 0; i < un; ++i) {
        const NodeId u = perm[i];
        const NodeId v = perm[(i + 1) % un];
        seen.insert(pairKey(u, v));
        sink(u, v);
      }
    }
  };
  return s;
}

EdgeStream randomRegularStream(NodeId n, int d, std::uint64_t seed) {
  return expanderStream(n, d, seed);
}

Graph materialize(const EdgeStream& stream) {
  Graph g(stream.nodes);
  stream.emit([&g](NodeId u, NodeId v) { g.addEdge(u, v); });
  g.finalize();
  return g;
}

}  // namespace mobile::graph
