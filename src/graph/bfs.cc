#include "graph/bfs.h"

#include <algorithm>
#include <queue>

namespace mobile::graph {

std::vector<int> bfsDistances(const Graph& g, NodeId source) {
  std::vector<int> dist(static_cast<std::size_t>(g.nodeCount()), -1);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& nb : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(nb.node)] < 0) {
        dist[static_cast<std::size_t>(nb.node)] =
            dist[static_cast<std::size_t>(v)] + 1;
        q.push(nb.node);
      }
    }
  }
  return dist;
}

RootedTree bfsTree(const Graph& g, NodeId source) {
  std::vector<NodeId> parent(static_cast<std::size_t>(g.nodeCount()), -1);
  std::vector<char> seen(static_cast<std::size_t>(g.nodeCount()), 0);
  std::queue<NodeId> q;
  seen[static_cast<std::size_t>(source)] = 1;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& nb : g.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(nb.node)]) {
        seen[static_cast<std::size_t>(nb.node)] = 1;
        parent[static_cast<std::size_t>(nb.node)] = v;
        q.push(nb.node);
      }
    }
  }
  return RootedTree::fromParents(source, parent, g);
}

int eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfsDistances(g, source);
  int ecc = 0;
  for (const int d : dist) {
    if (d < 0) return -1;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int diameter(const Graph& g) {
  int dia = 0;
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    const int ecc = eccentricity(g, v);
    if (ecc < 0) return -1;
    dia = std::max(dia, ecc);
  }
  return dia;
}

}  // namespace mobile::graph
