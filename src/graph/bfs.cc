#include "graph/bfs.h"

#include <algorithm>
#include <atomic>
#include <queue>

#include "util/thread_pool.h"

namespace mobile::graph {

std::vector<int> bfsDistances(const Graph& g, NodeId source) {
  std::vector<int> dist(static_cast<std::size_t>(g.nodeCount()), -1);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& nb : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(nb.node)] < 0) {
        dist[static_cast<std::size_t>(nb.node)] =
            dist[static_cast<std::size_t>(v)] + 1;
        q.push(nb.node);
      }
    }
  }
  return dist;
}

std::vector<int> bfsDistances(const Graph& g, NodeId source,
                              util::ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1) return bfsDistances(g, source);
  const std::size_t n = static_cast<std::size_t>(g.nodeCount());
  std::vector<int> dist(n, -1);
  dist[static_cast<std::size_t>(source)] = 0;
  std::vector<char> mark(n, 0);
  const std::size_t grain = std::max<std::size_t>(1, n / 256);
  for (int level = 0;; ++level) {
    std::atomic<bool> any{false};
    // Pass 1 reads only settled distances and writes each node's own mark
    // slot; pass 2 commits the marks.  No cross-thread write conflicts, so
    // the result cannot depend on the thread count.
    pool->parallelFor(
        n,
        [&](std::size_t v) {
          if (dist[v] >= 0) return;
          for (const auto& nb : g.neighbors(static_cast<NodeId>(v))) {
            if (dist[static_cast<std::size_t>(nb.node)] == level) {
              mark[v] = 1;
              any.store(true, std::memory_order_relaxed);
              break;
            }
          }
        },
        grain);
    if (!any.load(std::memory_order_relaxed)) break;
    pool->parallelFor(
        n,
        [&](std::size_t v) {
          if (mark[v]) {
            dist[v] = level + 1;
            mark[v] = 0;
          }
        },
        grain);
  }
  return dist;
}

RootedTree bfsTree(const Graph& g, NodeId source) {
  std::vector<NodeId> parent(static_cast<std::size_t>(g.nodeCount()), -1);
  std::vector<char> seen(static_cast<std::size_t>(g.nodeCount()), 0);
  std::queue<NodeId> q;
  seen[static_cast<std::size_t>(source)] = 1;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& nb : g.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(nb.node)]) {
        seen[static_cast<std::size_t>(nb.node)] = 1;
        parent[static_cast<std::size_t>(nb.node)] = v;
        q.push(nb.node);
      }
    }
  }
  return RootedTree::fromParents(source, parent, g);
}

int eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfsDistances(g, source);
  int ecc = 0;
  for (const int d : dist) {
    if (d < 0) return -1;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int diameter(const Graph& g) {
  int dia = 0;
  for (NodeId v = 0; v < g.nodeCount(); ++v) {
    const int ecc = eccentricity(g, v);
    if (ecc < 0) return -1;
    dia = std::max(dia, ecc);
  }
  return dia;
}

}  // namespace mobile::graph
