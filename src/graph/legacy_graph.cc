#include "graph/legacy_graph.h"

#include <algorithm>

namespace mobile::graph {

EdgeId LegacyGraph::addEdge(NodeId u, NodeId v) {
  assert(u != v && "self loops not supported");
  assert(u >= 0 && v >= 0 && u < nodeCount() && v < nodeCount());
  assert(!hasEdge(u, v) && "parallel edges not supported");
  if (u > v) std::swap(u, v);
  const EdgeId id = edgeCount();
  edges_.push_back({u, v});
  adjacency_[static_cast<std::size_t>(u)].push_back({v, id});
  adjacency_[static_cast<std::size_t>(v)].push_back({u, id});
  edgeIndex_.emplace(pairKey(u, v), id);
  return id;
}

bool LegacyGraph::hasEdge(NodeId u, NodeId v) const {
  return edgeBetween(u, v) >= 0;
}

EdgeId LegacyGraph::edgeBetween(NodeId u, NodeId v) const {
  if (u < 0 || v < 0 || u >= nodeCount() || v >= nodeCount()) return -1;
  if (u > v) std::swap(u, v);
  const auto it = edgeIndex_.find(pairKey(u, v));
  return it != edgeIndex_.end() ? it->second : -1;
}

ArcId LegacyGraph::arcFromTo(NodeId from, NodeId to) const {
  const EdgeId e = edgeBetween(from, to);
  assert(e >= 0);
  const Edge& ed = edge(e);
  return (ed.u == from) ? 2 * e : 2 * e + 1;
}

std::uint64_t structuralFingerprint(const LegacyGraph& g) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto fold = [&h](std::uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
    h ^= h >> 31;
  };
  fold(static_cast<std::uint64_t>(g.nodeCount()));
  for (EdgeId e = 0; e < g.edgeCount(); ++e) {
    const LegacyGraph::Edge& ed = g.edge(e);
    fold((static_cast<std::uint64_t>(static_cast<std::uint32_t>(ed.u)) << 32) |
         static_cast<std::uint32_t>(ed.v));
  }
  return h;
}

}  // namespace mobile::graph
