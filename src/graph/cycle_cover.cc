#include "graph/cycle_cover.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "graph/connectivity.h"

namespace mobile::graph {

namespace {

/// Set of edge ids used by a path collection.
std::set<EdgeId> pathEdgeSet(const Graph& g,
                             const std::vector<std::vector<NodeId>>& paths) {
  std::set<EdgeId> s;
  for (const auto& p : paths)
    for (std::size_t i = 0; i + 1 < p.size(); ++i)
      s.insert(g.edgeBetween(p[i], p[i + 1]));
  return s;
}

}  // namespace

CycleCover buildCycleCover(const Graph& g, int k) {
  CycleCover cc;
  const std::size_t m = static_cast<std::size_t>(g.edgeCount());
  cc.paths.resize(m);
  std::vector<int> edgeUse(m, 0);

  for (EdgeId e = 0; e < g.edgeCount(); ++e) {
    const Edge& ed = g.edge(e);
    auto paths = edgeDisjointPaths(g, ed.u, ed.v, k);
    // Put the trivial path first if max-flow produced it; otherwise ensure
    // it's present (it always exists since (u,v) is an edge).
    bool hasTrivial = false;
    for (const auto& p : paths)
      if (p.size() == 2) hasTrivial = true;
    if (!hasTrivial && static_cast<int>(paths.size()) < k)
      paths.push_back({ed.u, ed.v});
    cc.paths[static_cast<std::size_t>(e)] = std::move(paths);
    for (const auto& p : cc.paths[static_cast<std::size_t>(e)]) {
      cc.dilation = std::max(cc.dilation, static_cast<int>(p.size()) - 1);
      for (std::size_t i = 0; i + 1 < p.size(); ++i)
        ++edgeUse[static_cast<std::size_t>(g.edgeBetween(p[i], p[i + 1]))];
    }
  }
  for (const int u : edgeUse) cc.congestion = std::max(cc.congestion, u);

  // Good cycle coloring: greedy over the path-conflict graph (vertices are
  // edges; adjacency = any shared path edge).
  std::vector<std::set<EdgeId>> usage(m);
  for (EdgeId e = 0; e < g.edgeCount(); ++e)
    usage[static_cast<std::size_t>(e)] =
        pathEdgeSet(g, cc.paths[static_cast<std::size_t>(e)]);
  // inverted index: which cover-edges use edge x
  std::vector<std::vector<EdgeId>> usedBy(m);
  for (EdgeId e = 0; e < g.edgeCount(); ++e)
    for (const EdgeId x : usage[static_cast<std::size_t>(e)])
      usedBy[static_cast<std::size_t>(x)].push_back(e);

  cc.color.assign(m, -1);
  for (EdgeId e = 0; e < g.edgeCount(); ++e) {
    std::set<int> taken;
    for (const EdgeId x : usage[static_cast<std::size_t>(e)])
      for (const EdgeId other : usedBy[static_cast<std::size_t>(x)])
        if (other != e && cc.color[static_cast<std::size_t>(other)] >= 0)
          taken.insert(cc.color[static_cast<std::size_t>(other)]);
    int c = 0;
    while (taken.count(c)) ++c;
    cc.color[static_cast<std::size_t>(e)] = c;
    cc.colorCount = std::max(cc.colorCount, c + 1);
  }
  return cc;
}

bool validateCycleCover(const Graph& g, const CycleCover& cc, int k) {
  if (cc.paths.size() != static_cast<std::size_t>(g.edgeCount())) return false;
  for (EdgeId e = 0; e < g.edgeCount(); ++e) {
    const Edge& ed = g.edge(e);
    const auto& paths = cc.paths[static_cast<std::size_t>(e)];
    if (static_cast<int>(paths.size()) < k) return false;
    std::set<EdgeId> seen;
    for (const auto& p : paths) {
      if (p.empty() || p.front() != ed.u || p.back() != ed.v) return false;
      for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        const EdgeId x = g.edgeBetween(p[i], p[i + 1]);
        if (x < 0) return false;         // not a graph edge
        if (seen.count(x)) return false;  // not edge-disjoint
        seen.insert(x);
      }
    }
  }
  // Coloring: same-color cover-edges must have disjoint path edge sets.
  for (EdgeId e1 = 0; e1 < g.edgeCount(); ++e1) {
    const auto s1 = pathEdgeSet(g, cc.paths[static_cast<std::size_t>(e1)]);
    for (EdgeId e2 = e1 + 1; e2 < g.edgeCount(); ++e2) {
      if (cc.color[static_cast<std::size_t>(e1)] !=
          cc.color[static_cast<std::size_t>(e2)])
        continue;
      for (const EdgeId x :
           pathEdgeSet(g, cc.paths[static_cast<std::size_t>(e2)]))
        if (s1.count(x)) return false;
    }
  }
  return true;
}

}  // namespace mobile::graph
