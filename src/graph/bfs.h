// Breadth-first search utilities: distances, BFS trees, diameter.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace mobile::graph {

/// Distances from `source` (-1 for unreachable).
[[nodiscard]] std::vector<int> bfsDistances(const Graph& g, NodeId source);

/// BFS spanning tree rooted at `source` (partial if disconnected).
[[nodiscard]] RootedTree bfsTree(const Graph& g, NodeId source);

/// Exact diameter via all-sources BFS (fine at simulation scales).
/// Returns -1 for disconnected graphs.
[[nodiscard]] int diameter(const Graph& g);

/// Eccentricity of one node; -1 if the graph is disconnected from it.
[[nodiscard]] int eccentricity(const Graph& g, NodeId source);

}  // namespace mobile::graph
