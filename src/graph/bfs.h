// Breadth-first search utilities: distances, BFS trees, diameter.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace mobile::util {
class ThreadPool;
}

namespace mobile::graph {

/// Distances from `source` (-1 for unreachable).
[[nodiscard]] std::vector<int> bfsDistances(const Graph& g, NodeId source);

/// Level-synchronous parallel BFS distances.  Each level runs two node
/// sweeps over `pool` (mark then commit), reading only distances settled in
/// earlier levels, so the returned vector is identical to the sequential
/// overload at every thread count.  Falls back to the queue-based walk when
/// `pool` is null or single-threaded.  Cost is O(n * eccentricity) node
/// scans -- intended for the low-diameter graphs the compiler targets.
[[nodiscard]] std::vector<int> bfsDistances(const Graph& g, NodeId source,
                                            util::ThreadPool* pool);

/// BFS spanning tree rooted at `source` (partial if disconnected).
[[nodiscard]] RootedTree bfsTree(const Graph& g, NodeId source);

/// Exact diameter via all-sources BFS (fine at simulation scales).
/// Returns -1 for disconnected graphs.
[[nodiscard]] int diameter(const Graph& g);

/// Eccentricity of one node; -1 if the graph is disconnected from it.
[[nodiscard]] int eccentricity(const Graph& g, NodeId source);

}  // namespace mobile::graph
