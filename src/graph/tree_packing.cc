#include "graph/tree_packing.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <tuple>

#include "graph/bfs.h"
#include "util/thread_pool.h"

namespace mobile::graph {

namespace {

/// Pool fan-out helper: inline sequential loop when no pool (or a 1-thread
/// pool) is supplied, so the `pool == nullptr` path stays byte-identical.
void runOverRange(util::ThreadPool* pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr && pool->size() > 1 && count > 1) {
    pool->parallelFor(count, fn, std::max<std::size_t>(1, count / 256));
  } else {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
}

}  // namespace

PackingStats analyzePacking(const TreePacking& p, const Graph& g) {
  PackingStats s;
  s.treeCount = p.trees.size();
  std::vector<std::size_t> load(static_cast<std::size_t>(g.edgeCount()), 0);
  for (const auto& t : p.trees) {
    const bool spans = t.spanning(g.nodeCount());
    if (spans) {
      ++s.spanningCount;
      s.maxDepth = std::max(s.maxDepth, t.height());
    }
    for (const EdgeId e : t.edges()) ++load[static_cast<std::size_t>(e)];
  }
  for (const std::size_t l : load) s.maxLoad = std::max(s.maxLoad, l);
  bool sameRoot = true;
  for (const auto& t : p.trees)
    if (t.root != p.commonRoot) sameRoot = false;
  s.weakValid = sameRoot && s.treeCount > 0 &&
                10 * s.spanningCount >= 9 * s.treeCount;
  return s;
}

TreePacking cliqueStarPacking(const Graph& g) {
  const NodeId n = g.nodeCount();
  TreePacking p;
  p.commonRoot = 0;
  p.trees.reserve(static_cast<std::size_t>(n));
  for (NodeId center = 0; center < n; ++center) {
    std::vector<NodeId> parent(static_cast<std::size_t>(n), -1);
    if (center == 0) {
      for (NodeId v = 1; v < n; ++v) parent[static_cast<std::size_t>(v)] = 0;
    } else {
      // Root at 0: path 0 <- center <- everyone else.
      parent[static_cast<std::size_t>(center)] = 0;
      for (NodeId v = 1; v < n; ++v)
        if (v != center) parent[static_cast<std::size_t>(v)] = center;
    }
    p.trees.push_back(RootedTree::fromParents(0, parent, g));
  }
  return p;
}

namespace {

/// Depth-capped Prim: grows the tree by the globally cheapest crossing edge
/// whose tree endpoint still has depth < depthCap.  Our stand-in for the
/// Lemma C.1 shallow-tree oracle: weight-greedy (so the multiplicative-
/// weights outer loop spreads load) while respecting the depth budget.
/// Nodes unreachable within the cap are left out (callers verify spanning).
RootedTree shallowLightTree(const Graph& g, NodeId root,
                            const std::vector<double>& weight, int depthCap) {
  const std::size_t n = static_cast<std::size_t>(g.nodeCount());
  std::vector<NodeId> parent(n, -1);
  std::vector<int> depth(n, -1);
  depth[static_cast<std::size_t>(root)] = 0;

  using Item = std::tuple<double, NodeId, NodeId>;  // weight, from, to
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  auto relax = [&](NodeId v) {
    if (depth[static_cast<std::size_t>(v)] >= depthCap) return;
    for (const auto& nb : g.neighbors(v)) {
      if (depth[static_cast<std::size_t>(nb.node)] >= 0) continue;
      pq.push({weight[static_cast<std::size_t>(nb.edge)], v, nb.node});
    }
  };
  relax(root);
  while (!pq.empty()) {
    const auto [w, from, to] = pq.top();
    pq.pop();
    (void)w;
    if (depth[static_cast<std::size_t>(to)] >= 0) continue;  // stale
    parent[static_cast<std::size_t>(to)] = from;
    depth[static_cast<std::size_t>(to)] =
        depth[static_cast<std::size_t>(from)] + 1;
    relax(to);
  }
  return RootedTree::fromParents(root, parent, g);
}

}  // namespace

TreePacking greedyLowDepthPacking(const Graph& g, int k, NodeId root,
                                  int depthCap, util::ThreadPool* pool) {
  const std::size_t m = static_cast<std::size_t>(g.edgeCount());
  const std::size_t nNodes = static_cast<std::size_t>(g.nodeCount());
  const double n = static_cast<double>(g.nodeCount());
  // Theorem C.2 parameters: eta target O(log n), a = (alpha+2)/(alpha+1)
  // with alpha = O(log n) the shallow-tree approximation factor.
  const double eta = std::max(1.0, std::log2(std::max(2.0, n)));
  const double alpha = std::max(1.0, std::log2(std::max(2.0, n)));
  const double a = (alpha + 2.0) / (alpha + 1.0);

  // A load is bumped at most once per tree, so h <= k; tabulating
  // a^{h/eta} once turns the per-edge refresh from two std::pow calls
  // into two lookups.  The table entries are the exact std::pow values
  // the untabulated code computed (same argument doubles), so weights --
  // and therefore trees -- are bit-identical to the historical oracle.
  std::vector<double> powTable(static_cast<std::size_t>(k) + 2);
  for (std::size_t j = 0; j < powTable.size(); ++j)
    powTable[j] = std::pow(a, static_cast<double>(j) / eta);

  std::vector<int> load(m, 0);
  std::vector<double> weight(m);
  auto refreshWeights = [&] {
    runOverRange(pool, m, [&](std::size_t e) {
      const std::size_t h = static_cast<std::size_t>(load[e]);
      weight[e] = powTable[h + 1] - powTable[h];
    });
  };

  // Edge-load tally, sharded: the node range is cut into a fixed number of
  // shards (independent of thread count), each tallying its own counter
  // array; shards then reduce in ascending order.  Integer sums make any
  // order bit-identical, but the fixed shape keeps the layout auditable.
  // Each tree edge is owned by its child endpoint (parentEdge), so a
  // node-range shard touches a well-defined edge multiset.
  constexpr std::size_t kLoadShards = 8;
  std::vector<std::vector<int>> shardLoad;
  auto tallyLoads = [&](const RootedTree& t) {
    if (pool == nullptr || pool->size() <= 1 || nNodes < 2 * kLoadShards) {
      for (const EdgeId e : t.edges()) ++load[static_cast<std::size_t>(e)];
      return;
    }
    if (shardLoad.empty())
      shardLoad.assign(kLoadShards, std::vector<int>(m, 0));
    const std::size_t chunk = (nNodes + kLoadShards - 1) / kLoadShards;
    pool->parallelFor(
        kLoadShards,
        [&](std::size_t s) {
          auto& mine = shardLoad[s];
          const std::size_t lo = s * chunk;
          const std::size_t hi = std::min(nNodes, lo + chunk);
          for (std::size_t v = lo; v < hi; ++v) {
            const EdgeId e = t.parentEdge[v];
            if (e >= 0) ++mine[static_cast<std::size_t>(e)];
          }
        },
        1);
    runOverRange(pool, m, [&](std::size_t e) {
      int sum = 0;
      for (std::size_t s = 0; s < kLoadShards; ++s) {
        sum += shardLoad[s][e];
        shardLoad[s][e] = 0;
      }
      load[e] += sum;
    });
  };

  TreePacking p;
  p.commonRoot = root;
  p.trees.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    refreshWeights();
    RootedTree t = shallowLightTree(g, root, weight, depthCap);
    tallyLoads(t);
    p.trees.push_back(std::move(t));
  }
  return p;
}

TreePacking randomPartitionPacking(const Graph& g, int k, NodeId root,
                                   util::Rng& rng) {
  const std::size_t m = static_cast<std::size_t>(g.edgeCount());
  std::vector<int> color(m);
  for (auto& c : color)
    c = static_cast<int>(rng.below(static_cast<std::uint64_t>(k)));

  TreePacking p;
  p.commonRoot = root;
  for (int i = 0; i < k; ++i) {
    // BFS over edges of color i only.
    const std::size_t n = static_cast<std::size_t>(g.nodeCount());
    std::vector<NodeId> parent(n, -1);
    std::vector<char> seen(n, 0);
    std::queue<NodeId> q;
    q.push(root);
    seen[static_cast<std::size_t>(root)] = 1;
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (const auto& nb : g.neighbors(v)) {
        if (color[static_cast<std::size_t>(nb.edge)] != i) continue;
        if (seen[static_cast<std::size_t>(nb.node)]) continue;
        seen[static_cast<std::size_t>(nb.node)] = 1;
        parent[static_cast<std::size_t>(nb.node)] = v;
        q.push(nb.node);
      }
    }
    p.trees.push_back(RootedTree::fromParents(root, parent, g));
  }
  return p;
}

}  // namespace mobile::graph
