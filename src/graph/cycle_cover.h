// Fault-tolerant (low-congestion) cycle covers -- Definition 8 and
// Lemma 5.2 of the paper.
//
// An f-FT (cong, dilation) cycle cover supplies, for every graph edge
// (u, v), a collection P(u,v) of k edge-disjoint u-v paths (one of which may
// be the edge itself); `dilation` bounds path length and `cong` bounds how
// many paths share any one edge.  A *good cycle coloring* (Lemma 5.2)
// colors edges so that same-colored edges have pairwise edge-disjoint path
// collections, enabling the per-color-class scheduling of Theorem 5.5.
//
// Construction here runs in the trusted preprocessing phase (matching
// Theorem 1.4's assumption (ii)): paths via unit max-flow, coloring via
// greedy over the path-conflict graph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mobile::graph {

struct CycleCover {
  /// paths[e] = k edge-disjoint u-v paths for edge e = (u, v), as node
  /// sequences u..v.
  std::vector<std::vector<std::vector<NodeId>>> paths;
  std::vector<int> color;  // good cycle coloring, per edge
  int colorCount = 0;
  int dilation = 0;  // max path length (edges)
  int congestion = 0;  // max paths through one edge

  [[nodiscard]] const std::vector<std::vector<NodeId>>& pathsFor(
      EdgeId e) const {
    return paths[static_cast<std::size_t>(e)];
  }
};

/// Builds a k-FT cycle cover (k paths per edge including the edge itself).
/// Requires edge connectivity >= k.  Returns paths, measured cong/dilation,
/// and a good cycle coloring.
[[nodiscard]] CycleCover buildCycleCover(const Graph& g, int k);

/// Validates the defining properties; used by tests.
[[nodiscard]] bool validateCycleCover(const Graph& g, const CycleCover& cc,
                                      int k);

}  // namespace mobile::graph
