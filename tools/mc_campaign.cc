// mc_campaign: the declarative campaign runner.
//
//   mc_campaign [flags] CAMPAIGN_FILE...
//
// Expands each campaign file's scenario lines (src/scn) into trial grids,
// fans them over the exp::ExperimentDriver, streams per-trial JSON lines
// to the campaign's .jsonl record, and prints the standard sweep summary.
// Re-running against an existing record skips every completed grid point
// (resume), so an interrupted sweep continues where it died and a
// finished one is a no-op -- CI asserts exactly that.
//
// Shared fleet flags (exp::parseBenchArgs): --threads, --seed (shifts
// every point's seed axis), --json / --csv (aggregate reports over the
// trials executed *this run*), --list (print the scenario registries and
// exit), --smoke (accepted for fleet uniformity; campaign files pick
// their own grid sizes), --trace PATH (Chrome trace-event JSON of the
// whole run -- campaign/trial/round/phase spans plus the metrics
// snapshot; under --spawn each rank worker writes PATH[.rank<r>]).  Own flags: --out PATH (JSONL record; default
// CAMPAIGN_<name>.jsonl), --fresh (truncate the record instead of
// resuming), --dry (expand + validate every grid point, run nothing),
// --spawn N (loopback multi-process mode: fork N rank workers wired
// through MOBILE_NET_WORLD/RANK/PORT; transport=udp points partition
// their node sets across the workers, rank 0 merges and records),
// --port P (UDP base port for --spawn; rank r binds 127.0.0.1:P+r),
// --rank-threads N (default 1: engine threads *inside* each trial --
// NetworkOptions::numThreads -- for points that do not pin a threads=
// axis themselves; the way a --spawn rank, whose trial lanes are pinned
// to 1 by the lock-step policy, still uses N cores).
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "exp/bench_args.h"
#include "obs/obs.h"
#include "scn/campaign.h"
#include "scn/registry.h"
#include "util/table.h"

using namespace mobile;

namespace {

int envInt(const char* name, int dflt) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : dflt;
}

/// Forks `world` rank workers, each falling through to the normal runner
/// with MOBILE_NET_WORLD/RANK/PORT set; the parent only reaps.  Returns
/// the worst child exit code.  Must run before any threads exist.
int spawnWorkers(int world, int basePort) {
  std::vector<pid_t> kids;
  kids.reserve(static_cast<std::size_t>(world));
  for (int rank = 0; rank < world; ++rank) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("mc_campaign: fork");
      for (const pid_t kid : kids) ::kill(kid, SIGTERM);
      return 2;
    }
    if (pid == 0) {
      ::setenv("MOBILE_NET_WORLD", std::to_string(world).c_str(), 1);
      ::setenv("MOBILE_NET_RANK", std::to_string(rank).c_str(), 1);
      ::setenv("MOBILE_NET_PORT", std::to_string(basePort).c_str(), 1);
      return -1;  // child: continue into the runner
    }
    kids.push_back(pid);
  }
  int worst = 0;
  for (const pid_t kid : kids) {
    int status = 0;
    ::waitpid(kid, &status, 0);
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
    if (code > worst) worst = code;
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchArgs args = exp::parseBenchArgs(argc, argv,
                                                  /*allowUnknown=*/true);
  if (args.list) {
    scn::printRegistries(std::cout);
    return 0;
  }

  std::string outPath;
  bool fresh = false;
  bool dry = false;
  int spawn = 0;
  int basePort = 47810;
  int rankThreads = 1;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(a, "--fresh") == 0) {
      fresh = true;
    } else if (std::strcmp(a, "--dry") == 0) {
      dry = true;
    } else if (std::strcmp(a, "--spawn") == 0 && i + 1 < argc) {
      spawn = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--port") == 0 && i + 1 < argc) {
      basePort = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--rank-threads") == 0 && i + 1 < argc) {
      rankThreads = std::atoi(argv[++i]);
    } else if (a[0] == '-') {
      std::fprintf(stderr,
                   "%s: unknown flag '%s' (own flags: --out PATH, --fresh, "
                   "--dry, --spawn N, --port P, --rank-threads N; plus the "
                   "shared bench flags)\n",
                   argv[0], a);
      return 2;
    } else {
      files.emplace_back(a);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s [flags] CAMPAIGN_FILE...\n", argv[0]);
    return 2;
  }

  if (spawn > 1 && !dry) {
    // Fork the rank fleet before any threads or sockets exist; each child
    // re-enters here with its rank in the environment and runs the normal
    // path below.  The parent reaps and reports.
    const int rc = spawnWorkers(spawn, basePort);
    if (rc >= 0) {
      // The rank workers inherited the armed --trace flush and wrote their
      // own files; the coordinator's empty trace must not clobber rank 0's.
      obs::cancelTraceFile();
      std::cout << "# spawned " << spawn << " rank worker(s), worst exit "
                << rc << "\n";
      return rc;
    }
  }

  const int world = envInt("MOBILE_NET_WORLD", 1);
  const int rank = envInt("MOBILE_NET_RANK", 0);

  int rc = 0;
  for (const std::string& file : files) {
    try {
      const scn::Campaign campaign = scn::loadCampaignFile(file);
      scn::CampaignOptions opts;
      opts.threads = args.threads;
      opts.rankThreads = rankThreads;
      opts.seedOffset = args.seed;
      opts.resume = !fresh;
      opts.worldSize = world;
      opts.rank = rank;
      opts.jsonlPath =
          outPath.empty() ? "CAMPAIGN_" + campaign.name + ".jsonl" : outPath;

      // Replicas keep quiet: rank 0 owns the record and the narration.
      const bool chatty = rank == 0;
      if (chatty)
        std::cout << "# campaign " << campaign.name << " (" << file << ")\n";
      if (dry) {
        // Expand and lower every point (validating all axes) but run
        // nothing: the cheap pre-flight for a big sweep.
        std::vector<scn::Point> points;
        const auto specs =
            scn::buildCampaignSpecs(campaign, args.seed, &points);
        scn::printScenarios(std::cout, campaign);
        std::cout << specs.size() << " grid points validated (dry run)\n";
        continue;
      }
      const scn::CampaignRun run = scn::runCampaign(campaign, opts);
      if (chatty) {
        std::cout << run.points << " grid points, " << run.skipped
                  << " already recorded (resume), " << run.executed
                  << " executed on "
                  << (world > 1 ? 1 : opts.threads) << " trial lane(s)"
                  << (opts.rankThreads > 1
                          ? " x " + std::to_string(opts.rankThreads) +
                                " engine thread(s)"
                          : std::string())
                  << (world > 1
                          ? " x " + std::to_string(world) + " rank(s)"
                          : std::string())
                  << " -> " << opts.jsonlPath << "\n";
        if (!run.results.empty()) {
          std::cout << "\n";
          exp::summaryTable(exp::aggregate(run.results)).print(std::cout);
        }
        exp::maybeWriteReports(args, campaign.name, run.results);
      }
    } catch (const scn::ScnError& e) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(), e.what());
      rc = 1;
    }
  }
  return rc;
}
