// mc_campaign: the declarative campaign runner.
//
//   mc_campaign [flags] CAMPAIGN_FILE...
//
// Expands each campaign file's scenario lines (src/scn) into trial grids,
// fans them over the exp::ExperimentDriver, streams per-trial JSON lines
// to the campaign's .jsonl record, and prints the standard sweep summary.
// Re-running against an existing record skips every completed grid point
// (resume), so an interrupted sweep continues where it died and a
// finished one is a no-op -- CI asserts exactly that.
//
// Shared fleet flags (exp::parseBenchArgs): --threads, --seed (shifts
// every point's seed axis), --json / --csv (aggregate reports over the
// trials executed *this run*), --list (print the scenario registries and
// exit), --smoke (accepted for fleet uniformity; campaign files pick
// their own grid sizes).  Own flags: --out PATH (JSONL record; default
// CAMPAIGN_<name>.jsonl), --fresh (truncate the record instead of
// resuming), --dry (expand + validate every grid point, run nothing).
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "exp/bench_args.h"
#include "scn/campaign.h"
#include "scn/registry.h"
#include "util/table.h"

using namespace mobile;

int main(int argc, char** argv) {
  const exp::BenchArgs args = exp::parseBenchArgs(argc, argv,
                                                  /*allowUnknown=*/true);
  if (args.list) {
    scn::printRegistries(std::cout);
    return 0;
  }

  std::string outPath;
  bool fresh = false;
  bool dry = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(a, "--fresh") == 0) {
      fresh = true;
    } else if (std::strcmp(a, "--dry") == 0) {
      dry = true;
    } else if (a[0] == '-') {
      std::fprintf(stderr,
                   "%s: unknown flag '%s' (own flags: --out PATH, --fresh, "
                   "--dry; plus the shared bench flags)\n",
                   argv[0], a);
      return 2;
    } else {
      files.emplace_back(a);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s [flags] CAMPAIGN_FILE...\n", argv[0]);
    return 2;
  }

  int rc = 0;
  for (const std::string& file : files) {
    try {
      const scn::Campaign campaign = scn::loadCampaignFile(file);
      scn::CampaignOptions opts;
      opts.threads = args.threads;
      opts.seedOffset = args.seed;
      opts.resume = !fresh;
      opts.jsonlPath =
          outPath.empty() ? "CAMPAIGN_" + campaign.name + ".jsonl" : outPath;

      std::cout << "# campaign " << campaign.name << " (" << file << ")\n";
      if (dry) {
        // Expand and lower every point (validating all axes) but run
        // nothing: the cheap pre-flight for a big sweep.
        std::vector<scn::Point> points;
        const auto specs =
            scn::buildCampaignSpecs(campaign, args.seed, &points);
        scn::printScenarios(std::cout, campaign);
        std::cout << specs.size() << " grid points validated (dry run)\n";
        continue;
      }
      const scn::CampaignRun run = scn::runCampaign(campaign, opts);
      std::cout << run.points << " grid points, " << run.skipped
                << " already recorded (resume), " << run.executed
                << " executed on " << opts.threads << " thread(s) -> "
                << opts.jsonlPath << "\n";
      if (!run.results.empty()) {
        std::cout << "\n";
        exp::summaryTable(exp::aggregate(run.results)).print(std::cout);
      }
      exp::maybeWriteReports(args, campaign.name, run.results);
    } catch (const scn::ScnError& e) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(), e.what());
      rc = 1;
    }
  }
  return rc;
}
