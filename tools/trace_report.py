#!/usr/bin/env python3
"""Validate and summarize a Chrome trace-event JSON written by --trace.

Usage:
    tools/trace_report.py TRACE.json [TRACE.json ...]

For each file: loads it, checks the shape the obs tracer guarantees
(object form, "traceEvents" list, every event carrying name/cat/ph/pid/
tid/ts, every 'X' event carrying dur), then prints

  * a per-span table -- one row per (cat, name) 'X' pair with count,
    total/mean/max duration;
  * a per-instant table -- one row per (cat, name) 'i' pair with count
    (adversary corruption events land here);
  * the metrics snapshot (counters, gauges, histograms) embedded by
    writeChromeTrace;
  * droppedEvents, loudly, when the trace buffer overflowed.

Exit status: 0 when every file parses and validates, 1 on any malformed
file (unreadable, bad JSON, or a shape violation) -- CI runs this against
the smoke campaign's trace, so a regression in the writer fails the job.
Dropped events alone do NOT fail: an overflowed buffer is a truthful,
well-formed trace of a too-long run.
"""

import json
import sys
from collections import defaultdict


def fail(path, msg):
    print(f"{path}: MALFORMED: {msg}", file=sys.stderr)
    return False


def validate_event(path, i, e):
    if not isinstance(e, dict):
        return fail(path, f"traceEvents[{i}] is not an object")
    for key in ("name", "cat", "ph", "pid", "tid", "ts"):
        if key not in e:
            return fail(path, f"traceEvents[{i}] missing '{key}'")
    if e["ph"] == "X" and "dur" not in e:
        return fail(path, f"traceEvents[{i}] is 'X' but has no 'dur'")
    return True


def print_table(title, header, rows):
    if not rows:
        return
    print(f"\n{title}")
    widths = [max(len(str(r[c])) for r in [header] + rows)
              for c in range(len(header))]
    for r in [header] + rows:
        print("  " + "  ".join(str(v).ljust(w) for v, w in zip(r, widths)))


def report(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, str(e))
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(path, "'traceEvents' missing or not a list")
    for i, e in enumerate(events):
        if not validate_event(path, i, e):
            return False

    spans = defaultdict(lambda: [0, 0, 0])   # (cat,name) -> [n, total, max]
    instants = defaultdict(int)
    for e in events:
        key = (e["cat"], e["name"])
        if e["ph"] == "X":
            s = spans[key]
            s[0] += 1
            s[1] += e["dur"]
            s[2] = max(s[2], e["dur"])
        elif e["ph"] == "i":
            instants[key] += 1

    print(f"{path}: {len(events)} event(s), "
          f"{sum(n for n, _, _ in spans.values())} span(s), "
          f"{sum(instants.values())} instant(s)")

    print_table("spans (ph=X)",
                ["cat", "name", "count", "total_us", "mean_us", "max_us"],
                [[c, n, s[0], s[1], round(s[1] / s[0], 1), s[2]]
                 for (c, n), s in sorted(spans.items())])
    print_table("instants (ph=i)", ["cat", "name", "count"],
                [[c, n, k] for (c, n), k in sorted(instants.items())])

    metrics = doc.get("metrics", {})
    print_table("counters", ["name", "value"],
                [[k, v] for k, v in sorted(metrics.get("counters", {}).items())])
    print_table("gauges", ["name", "value"],
                [[k, v] for k, v in sorted(metrics.get("gauges", {}).items())])
    print_table("histograms", ["name", "count", "sum", "max"],
                [[k, h.get("count"), h.get("sum"), h.get("max")]
                 for k, h in sorted(metrics.get("histograms", {}).items())])

    dropped = doc.get("droppedEvents", 0)
    if dropped:
        print(f"\nWARNING: {dropped} event(s) dropped "
              "(trace buffer overflowed; raise the tracer capacity)")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    ok = True
    for i, path in enumerate(argv[1:]):
        if i:
            print()
        ok = report(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
